// Unit tests for src/common: units, RNG, statistics, table, CLI.
#include <gtest/gtest.h>

#include <clocale>
#include <cstdio>
#include <set>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "obs/json.hpp"

namespace rvma {
namespace {

TEST(Units, TimeConstants) {
  EXPECT_EQ(kNanosecond, 1000u);
  EXPECT_EQ(kMicrosecond, 1000u * kNanosecond);
  EXPECT_EQ(kSecond, 1000u * kMillisecond);
  EXPECT_EQ(ns(1.5), 1500u);
  EXPECT_EQ(us(2.0), 2'000'000u);
}

TEST(Units, TimeConversions) {
  EXPECT_DOUBLE_EQ(to_us(1'500'000), 1.5);
  EXPECT_DOUBLE_EQ(to_ns(2'500), 2.5);
}

TEST(Units, BandwidthSerialize) {
  // 100 Gbps = 12.5 GB/s: 1250 bytes take 100 ns.
  const Bandwidth bw = Bandwidth::gbps(100);
  EXPECT_EQ(bw.serialize(1250), 100 * kNanosecond);
  // 2 Tbps: 1 KiB takes 4.096 ns.
  EXPECT_EQ(Bandwidth::tbps(2).serialize(1024), static_cast<Time>(4096));
}

TEST(Units, BandwidthScaled) {
  const Bandwidth bw = Bandwidth::gbps(100).scaled(1.5);
  EXPECT_DOUBLE_EQ(bw.gbps_value(), 150.0);
}

TEST(Units, ZeroBandwidthSerializesInstantly) {
  EXPECT_EQ(Bandwidth{}.serialize(1'000'000), 0u);
}

TEST(Units, Formatting) {
  EXPECT_EQ(format_time(1500 * kNanosecond), "1.50 us");
  EXPECT_EQ(format_size(4096), "4 KiB");
  EXPECT_EQ(format_size(3), "3 B");
  EXPECT_EQ(format_bandwidth(Bandwidth::tbps(2)), "2.00 Tbps");
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextInInclusive) {
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const auto v = rng.next_in(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 1000.0, 0.5, 0.05);
}

TEST(Rng, ForkIndependent) {
  Rng parent(5);
  Rng child = parent.fork();
  EXPECT_NE(parent(), child());
}

TEST(RunningStat, MeanVariance) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, MergeMatchesSequential) {
  RunningStat all, a, b;
  for (int i = 0; i < 50; ++i) {
    const double v = i * 0.37;
    all.add(v);
    (i % 2 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Samples, Percentiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(90), 90.1, 1e-9);
}

TEST(Samples, MeanStd) {
  Samples s;
  s.add(1.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(2.0), 1e-12);
}

TEST(Log2Histogram, Buckets) {
  Log2Histogram h;
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(1024);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bucket_count(Log2Histogram::bucket_of(0)), 1u);
  EXPECT_EQ(h.bucket_count(Log2Histogram::bucket_of(2)),
            2u);  // 2 and 3 share a bucket
  EXPECT_EQ(Log2Histogram::bucket_floor(Log2Histogram::bucket_of(1024)),
            1024u);
}

TEST(Table, AlignsColumns) {
  Table t({"size", "latency"});
  t.add_row({"2 B", "1.00"});
  t.add_row({"4 MiB", "350.25"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("size"), std::string::npos);
  EXPECT_NE(out.find("350.25"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Cli, ParsesForms) {
  const char* argv[] = {"prog", "--alpha=3", "--beta=7", "--flag", "pos"};
  Cli cli(5, argv);
  EXPECT_EQ(cli.get_int("alpha", 0), 3);
  EXPECT_EQ(cli.get_int("beta", 0), 7);
  EXPECT_TRUE(cli.get_bool("flag", false));
  EXPECT_EQ(cli.get("missing", "dflt"), "dflt");
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos");
}

TEST(Cli, UnconsumedDetectsTypos) {
  const char* argv[] = {"prog", "--nodse=4"};
  Cli cli(2, argv);
  cli.get_int("nodes", 2);
  const auto leftovers = cli.unconsumed();
  ASSERT_EQ(leftovers.size(), 1u);
  EXPECT_EQ(leftovers[0], "nodse");
}

TEST(Cli, DoubleAndBool) {
  const char* argv[] = {"prog", "--x=2.5", "--on=true", "--off=0"};
  Cli cli(4, argv);
  EXPECT_DOUBLE_EQ(cli.get_double("x", 0.0), 2.5);
  EXPECT_TRUE(cli.get_bool("on", false));
  EXPECT_FALSE(cli.get_bool("off", true));
}

TEST(UnitParse, Duration) {
  Time t = 0;
  EXPECT_TRUE(parse_duration("2.5us", &t));
  EXPECT_EQ(t, 2'500'000u);
  EXPECT_TRUE(parse_duration("150 ns", &t));
  EXPECT_EQ(t, 150'000u);
  EXPECT_TRUE(parse_duration("1ms", &t));
  EXPECT_EQ(t, kMillisecond);
  EXPECT_TRUE(parse_duration("1500ps", &t));
  EXPECT_EQ(t, 1500u);
  EXPECT_TRUE(parse_duration("1500", &t));  // bare picoseconds
  EXPECT_EQ(t, 1500u);
  EXPECT_TRUE(parse_duration("0s", &t));
  EXPECT_EQ(t, 0u);
  EXPECT_TRUE(parse_duration("inf", &t));
  EXPECT_EQ(t, kTimeInfinity);
  // Malformed / inexact inputs: rejected, *out untouched.
  t = 42;
  EXPECT_FALSE(parse_duration("", &t));
  EXPECT_FALSE(parse_duration("ns", &t));
  EXPECT_FALSE(parse_duration("1.5ps", &t));  // fractional picosecond
  EXPECT_FALSE(parse_duration("10 parsecs", &t));
  EXPECT_EQ(t, 42u);
}

TEST(UnitParse, Size) {
  std::uint64_t s = 0;
  EXPECT_TRUE(parse_size("64KiB", &s));
  EXPECT_EQ(s, 64 * KiB);
  EXPECT_TRUE(parse_size("4 MiB", &s));
  EXPECT_EQ(s, 4 * MiB);
  EXPECT_TRUE(parse_size("2GiB", &s));
  EXPECT_EQ(s, 2 * GiB);
  EXPECT_TRUE(parse_size("4096", &s));
  EXPECT_EQ(s, 4096u);
  EXPECT_TRUE(parse_size("512B", &s));
  EXPECT_EQ(s, 512u);
  s = 7;
  EXPECT_FALSE(parse_size("-1B", &s));
  EXPECT_FALSE(parse_size("1.5B", &s));
  EXPECT_FALSE(parse_size("64KB", &s));  // only binary prefixes
  EXPECT_EQ(s, 7u);
}

TEST(UnitParse, Bandwidth) {
  Bandwidth bw;
  EXPECT_TRUE(parse_bandwidth("100Gbps", &bw));
  EXPECT_EQ(bw, Bandwidth::gbps(100));
  EXPECT_TRUE(parse_bandwidth("2Tbps", &bw));
  EXPECT_EQ(bw, Bandwidth::gbps(2000));
  EXPECT_TRUE(parse_bandwidth("800 Mbps", &bw));
  EXPECT_DOUBLE_EQ(bw.bits_per_sec, 800e6);
  EXPECT_TRUE(parse_bandwidth("125000bps", &bw));
  EXPECT_DOUBLE_EQ(bw.bits_per_sec, 125000.0);
  EXPECT_TRUE(parse_bandwidth("100", &bw));  // bare number = bits/sec
  EXPECT_DOUBLE_EQ(bw.bits_per_sec, 100.0);
  EXPECT_FALSE(parse_bandwidth("fast", &bw));
  EXPECT_FALSE(parse_bandwidth("100 knots", &bw));
}

TEST(UnitParse, CanonicalRoundTrip) {
  // canonical -> parse -> canonical is the identity: this is what keeps
  // scenario-spec JSON byte-stable across load/save cycles.
  const Time times[] = {0,         1,          999,           1500,
                        150'000,   2'500'000,  kMillisecond,  3 * kSecond,
                        kTimeInfinity};
  for (Time t : times) {
    const std::string s = canonical_duration(t);
    Time back = ~t;
    ASSERT_TRUE(parse_duration(s, &back)) << s;
    EXPECT_EQ(back, t) << s;
    EXPECT_EQ(canonical_duration(back), s);
  }
  const std::uint64_t sizes[] = {0, 1, 512, 4096, 64 * KiB, 4 * MiB + 1,
                                 2 * GiB};
  for (std::uint64_t z : sizes) {
    const std::string s = canonical_size(z);
    std::uint64_t back = ~z;
    ASSERT_TRUE(parse_size(s, &back)) << s;
    EXPECT_EQ(back, z) << s;
    EXPECT_EQ(canonical_size(back), s);
  }
  const Bandwidth bws[] = {Bandwidth::gbps(100), Bandwidth::gbps(2000),
                           Bandwidth::gbps(0.5), Bandwidth(125000.0),
                           Bandwidth(1.5)};
  for (Bandwidth bw : bws) {
    const std::string s = canonical_bandwidth(bw);
    Bandwidth back;
    ASSERT_TRUE(parse_bandwidth(s, &back)) << s;
    EXPECT_EQ(back, bw) << s;
    EXPECT_EQ(canonical_bandwidth(back), s);
  }
}

TEST(UnitParse, ExponentFormsAndOverflowBoundaries) {
  Time t = 0;
  // Exponent forms take the double fallback path and still land exactly.
  EXPECT_TRUE(parse_duration("1e3us", &t));
  EXPECT_EQ(t, 1000 * kMicrosecond);
  EXPECT_TRUE(parse_duration("2.5e2ns", &t));
  EXPECT_EQ(t, 250'000u);

  // Digits-only values survive verbatim past the 53-bit double mantissa...
  std::uint64_t s = 0;
  EXPECT_TRUE(parse_size("18446744073709551615", &s));  // UINT64_MAX
  EXPECT_EQ(s, UINT64_MAX);
  // ...and overflow is rejected, not silently rounded back into range:
  // 2^64 rounds to exactly kTwoPow64 as a double, the boundary case.
  s = 7;
  EXPECT_FALSE(parse_size("18446744073709551616", &s));  // 2^64
  EXPECT_FALSE(parse_size("99999999999999999999", &s));
  EXPECT_FALSE(parse_size("20000000000GiB", &s));  // unit multiply overflows
  EXPECT_EQ(s, 7u);

  // Fractional results that do not scale to an integral count of base
  // units are rejected (no hidden rounding).
  EXPECT_FALSE(parse_duration("1.0000001ps", &t));
}

TEST(Cli, MalformedDoubleFailsLoud) {
  // get_double used to fall back to strtod semantics: "2,5" parsed as 2
  // with trailing garbage ignored. Now any non-numeric remainder exits
  // with a diagnostic rather than silently truncating.
  auto parse = [](const char* val) {
    const char* argv[] = {"prog", val};
    Cli cli(2, argv);
    cli.get_double("x", 0.0);
    std::exit(0);  // not reached for malformed values
  };
  EXPECT_EXIT(parse("--x=2,5"), ::testing::ExitedWithCode(2), "numeric");
  EXPECT_EXIT(parse("--x=abc"), ::testing::ExitedWithCode(2), "numeric");
  EXPECT_EXIT(parse("--x=2.5e"), ::testing::ExitedWithCode(2), "numeric");
  EXPECT_EXIT(parse("--x="), ::testing::ExitedWithCode(2), "numeric");
  EXPECT_EXIT(parse("--x=1.5"), ::testing::ExitedWithCode(0), "");
  EXPECT_EXIT(parse("--x=+1.5"), ::testing::ExitedWithCode(0), "");
}

TEST(LocaleDeterminism, CommaDecimalLocaleRoundTrips) {
  // Under a comma-decimal LC_NUMERIC, strtod("2.5") stops at the dot and
  // printf("%g") emits "2,5" — which is how figure JSON written on one
  // machine failed to parse on another. Every parse/format path now uses
  // locale-independent from_chars/to_chars; this test pins that by
  // running the full round trip with the comma locale active.
  const char* candidates[] = {"de_DE.UTF-8", "de_DE.utf8", "fr_FR.UTF-8",
                              "fr_FR.utf8",  "nl_NL.UTF-8"};
  const char* saved = std::setlocale(LC_ALL, nullptr);
  const std::string restore = saved ? saved : "C";
  const char* active = nullptr;
  for (const char* name : candidates) {
    if (std::setlocale(LC_ALL, name) != nullptr) {
      active = name;
      break;
    }
  }
  if (active == nullptr) {
    GTEST_SKIP() << "no comma-decimal locale installed";
  }
  // Confirm the locale really uses a comma before trusting the test.
  char probe[32];
  std::snprintf(probe, sizeof probe, "%.1f", 2.5);
  if (std::string(probe) != "2,5") {
    std::setlocale(LC_ALL, restore.c_str());
    GTEST_SKIP() << active << " does not use comma decimals here";
  }

  Time t = 0;
  EXPECT_TRUE(parse_duration("2.5us", &t));
  EXPECT_EQ(t, 2'500'000u);

  Bandwidth bw;
  EXPECT_TRUE(parse_bandwidth("0.5Gbps", &bw));
  EXPECT_DOUBLE_EQ(bw.bits_per_sec, 5e8);
  EXPECT_EQ(canonical_bandwidth(Bandwidth::gbps(0.5)), "500Mbps");
  EXPECT_EQ(canonical_bandwidth(Bandwidth(1.5)), "1.5bps");  // dot, not comma

  const char* argv[] = {"prog", "--x=2.5"};
  Cli cli(2, argv);
  EXPECT_DOUBLE_EQ(cli.get_double("x", 0.0), 2.5);

  // JSON numbers: parse and re-serialize with the comma locale active.
  obs::JsonValue v;
  std::string error;
  ASSERT_TRUE(obs::json_parse("{\"lat\": 2.5e-3}", &v, &error)) << error;
  const obs::JsonValue* lat = v.find("lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_DOUBLE_EQ(lat->as_double(), 2.5e-3);

  std::setlocale(LC_ALL, restore.c_str());
}

}  // namespace
}  // namespace rvma
