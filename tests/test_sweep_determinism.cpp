// Parallel-sweep determinism: the whole point of the SweepExecutor is
// that running the figure grids with jobs=N produces bit-identical
// results to jobs=1. These tests pin that contract on a mini Figure-8
// style grid (expressed as a scenario GridSpec), on the per-run trace
// sinks, and on the seed derivation.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/figure_grid.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"

namespace rvma::scenario {
namespace {

GridSpec mini_grid() {
  GridSpec grid;
  grid.figure = "test";
  grid.motif_label = "Halo3D";
  grid.base.nodes = 8;
  grid.base.motif = "halo3d";
  grid.base.motif_params = {{"nx", "8"},
                            {"ny", "8"},
                            {"nz", "8"},
                            {"vars", "2"},
                            {"iterations", "2"},
                            {"compute_per_cell", "50ps"}};
  grid.gbps = {100, 400};
  // First three rows of the figure grid keep the tests under a second
  // while still covering torus, fat-tree, and adaptive routing.
  grid.cases = {"torus3d-static", "torus3d-adaptive", "fattree-static"};
  return grid;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(SweepDeterminism, ParallelGridMatchesSerial) {
  const GridSpec grid = mini_grid();

  std::vector<GridCell> serial, parallel;
  std::string error;
  ASSERT_TRUE(run_grid(grid, 1, &serial, &error)) << error;
  ASSERT_TRUE(run_grid(grid, 4, &parallel, &error)) << error;

  ASSERT_EQ(serial.size(), grid.cases.size() * grid.gbps.size());
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "cell " << i;
    EXPECT_GT(serial[i].rdma.makespan, 0) << "cell " << i;
    EXPECT_GT(serial[i].rvma.makespan, 0) << "cell " << i;
    EXPECT_GT(serial[i].rdma.packets_delivered, 0u) << "cell " << i;
  }
}

TEST(SweepDeterminism, PerRunTraceSinksAreReproducible) {
  const GridSpec grid = mini_grid();
  const std::string path_a = ::testing::TempDir() + "sweep_det_a.jsonl";
  const std::string path_b = ::testing::TempDir() + "sweep_det_b.jsonl";

  // The same cell-half spec the grid's run 1 would execute.
  TopoCase tc;
  std::string error;
  ASSERT_TRUE(resolve_topo_case("torus3d-static", &tc, &error)) << error;
  const ScenarioSpec spec =
      expand_cell(grid, tc, 0, 0, /*use_rvma=*/true);

  Tracer sink_a, sink_b;
  ASSERT_TRUE(sink_a.open(path_a));
  ASSERT_TRUE(sink_b.open(path_b));
  ScenarioResult a, b;
  ASSERT_TRUE(run_scenario(spec, &a, &error, &sink_a)) << error;
  ASSERT_TRUE(run_scenario(spec, &b, &error, &sink_b)) << error;
  sink_a.close();
  sink_b.close();

  EXPECT_EQ(a, b);
  EXPECT_GT(a.trace_events, 0u);  // RVMA completions are traced
  EXPECT_EQ(a.trace_events, b.trace_events);
  const std::string bytes_a = read_file(path_a);
  EXPECT_FALSE(bytes_a.empty());
  EXPECT_EQ(bytes_a, read_file(path_b));
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(SweepDeterminism, MetricsJsonIdenticalAcrossJobCounts) {
  GridSpec grid = mini_grid();
  grid.base.sample_period = 2 * kMicrosecond;

  std::vector<GridCell> serial, parallel;
  std::string error;
  ASSERT_TRUE(run_grid(grid, 1, &serial, &error)) << error;
  ASSERT_TRUE(run_grid(grid, 4, &parallel, &error)) << error;
  const obs::MetricsDoc doc_s = build_grid_metrics_doc(grid, serial);
  const obs::MetricsDoc doc_p = build_grid_metrics_doc(grid, parallel);

  // The serialized document — the exact bytes --metrics writes — must be
  // identical at any job count.
  const std::string json_s = obs::to_json(doc_s);
  EXPECT_EQ(json_s, obs::to_json(doc_p));

  // And it must actually contain the observability payload: counters,
  // a populated latency histogram, and sampled gauge timeseries.
  EXPECT_GT(doc_s.totals.counters.at("fabric.packets_delivered"), 0u);
  ASSERT_TRUE(doc_s.totals.histograms.count("fabric.pkt_latency_ns"));
  EXPECT_GT(doc_s.totals.histograms.at("fabric.pkt_latency_ns").count, 0u);
  ASSERT_FALSE(doc_s.timeseries.empty());
  for (const obs::Timeseries& ts : doc_s.timeseries) {
    EXPECT_FALSE(ts.empty());
    EXPECT_FALSE(ts.label.empty());
    EXPECT_EQ(ts.period, grid.base.sample_period);
  }

  // Sampling must not perturb the simulation: same makespans and event
  // counts as the unsampled grid.
  std::vector<GridCell> unsampled;
  ASSERT_TRUE(run_grid(mini_grid(), 1, &unsampled, &error)) << error;
  ASSERT_EQ(unsampled.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].rvma.makespan, unsampled[i].rvma.makespan) << i;
    EXPECT_EQ(serial[i].rdma.engine_events, unsampled[i].rdma.engine_events)
        << i;
  }
}

TEST(SweepDeterminism, StaticRoutingUsesNextHopCache) {
  const GridSpec grid = mini_grid();
  ScenarioSpec spec = grid.base;
  spec.topology = "torus3d";
  spec.routing = "static";
  spec.transport = "rvma";
  spec.seed = 1;

  ScenarioResult cached, adaptive;
  std::string error;
  ASSERT_TRUE(run_scenario(spec, &cached, &error)) << error;
  EXPECT_GT(cached.route_cache_hits, 0u);

  spec.routing = "adaptive";
  ASSERT_TRUE(run_scenario(spec, &adaptive, &error)) << error;
  EXPECT_EQ(adaptive.route_cache_hits, 0u);
}

TEST(SweepDeterminism, RunSeedsAreStableAndDistinct) {
  const std::uint64_t base = 2021;
  EXPECT_EQ(derive_run_seed(base, 3, 1, true), derive_run_seed(base, 3, 1, true));
  std::set<std::uint64_t> seeds;
  for (std::uint64_t c = 0; c < 8; ++c) {
    for (std::uint64_t s = 0; s < 4; ++s) {
      seeds.insert(derive_run_seed(base, c, s, false));
      seeds.insert(derive_run_seed(base, c, s, true));
    }
  }
  EXPECT_EQ(seeds.size(), 8u * 4u * 2u);  // no collisions across the grid
  EXPECT_NE(derive_run_seed(base, 0, 0, false), derive_run_seed(base + 1, 0, 0, false));
}

}  // namespace
}  // namespace rvma::scenario
