// Parallel-sweep determinism: the whole point of the SweepExecutor is
// that running the figure grids with jobs=N produces bit-identical
// results to jobs=1. These tests pin that contract on a mini Figure-8
// style grid, on the per-run trace sinks, and on the seed derivation.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "motifs/figure_bench.hpp"
#include "motifs/halo3d.hpp"

namespace rvma::motifs {
namespace {

MotifBenchConfig mini_bench() {
  MotifBenchConfig bench;
  bench.figure = "test";
  bench.motif = "Halo3D";
  bench.nodes = 8;
  bench.gbps = {100, 400};
  bench.build = [](int nodes) {
    Halo3DConfig cfg;
    const int p =
        std::max(1, static_cast<int>(std::cbrt(static_cast<double>(nodes))));
    cfg.px = p;
    cfg.py = p;
    cfg.pz = std::max(1, nodes / (p * p));
    cfg.nx = cfg.ny = cfg.nz = 8;
    cfg.vars = 2;
    cfg.iterations = 2;
    cfg.compute_per_cell = 50 * kPicosecond;
    return build_halo3d(cfg);
  };
  return bench;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(SweepDeterminism, ParallelGridMatchesSerial) {
  const MotifBenchConfig bench = mini_bench();
  // First three rows of the figure grid keep the test under a second
  // while still covering torus, fat-tree, and adaptive routing.
  std::vector<TopoCase> cases(figure_topo_cases().begin(),
                              figure_topo_cases().begin() + 3);

  const std::vector<MotifCell> serial = run_motif_grid(bench, cases, 1);
  const std::vector<MotifCell> parallel = run_motif_grid(bench, cases, 4);

  ASSERT_EQ(serial.size(), cases.size() * bench.gbps.size());
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "cell " << i;
    EXPECT_GT(serial[i].rdma.makespan, 0) << "cell " << i;
    EXPECT_GT(serial[i].rvma.makespan, 0) << "cell " << i;
    EXPECT_GT(serial[i].rdma.packets_delivered, 0u) << "cell " << i;
  }
}

TEST(SweepDeterminism, PerRunTraceSinksAreReproducible) {
  const MotifBenchConfig bench = mini_bench();
  const std::string path_a = ::testing::TempDir() + "sweep_det_a.jsonl";
  const std::string path_b = ::testing::TempDir() + "sweep_det_b.jsonl";
  const std::uint64_t seed = derive_run_seed(bench.seed, 0, 0, true);

  Tracer sink_a, sink_b;
  ASSERT_TRUE(sink_a.open(path_a));
  ASSERT_TRUE(sink_b.open(path_b));
  const MotifRunOutput a =
      run_motif_once(bench, net::TopologyKind::kTorus3D, net::Routing::kStatic,
                     Bandwidth::gbps(100), true, seed, &sink_a);
  const MotifRunOutput b =
      run_motif_once(bench, net::TopologyKind::kTorus3D, net::Routing::kStatic,
                     Bandwidth::gbps(100), true, seed, &sink_b);
  sink_a.close();
  sink_b.close();

  EXPECT_EQ(a, b);
  EXPECT_GT(a.trace_events, 0u);  // RVMA completions are traced
  EXPECT_EQ(a.trace_events, b.trace_events);
  const std::string bytes_a = read_file(path_a);
  EXPECT_FALSE(bytes_a.empty());
  EXPECT_EQ(bytes_a, read_file(path_b));
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(SweepDeterminism, MetricsJsonIdenticalAcrossJobCounts) {
  MotifBenchConfig bench = mini_bench();
  bench.sample_period = 2 * kMicrosecond;
  std::vector<TopoCase> cases(figure_topo_cases().begin(),
                              figure_topo_cases().begin() + 3);

  const std::vector<MotifCell> serial = run_motif_grid(bench, cases, 1);
  const std::vector<MotifCell> parallel = run_motif_grid(bench, cases, 4);
  const obs::MetricsDoc doc_s = build_motif_metrics_doc(bench, cases, serial);
  const obs::MetricsDoc doc_p =
      build_motif_metrics_doc(bench, cases, parallel);

  // The serialized document — the exact bytes --metrics writes — must be
  // identical at any job count.
  const std::string json_s = obs::to_json(doc_s);
  EXPECT_EQ(json_s, obs::to_json(doc_p));

  // And it must actually contain the observability payload: counters,
  // a populated latency histogram, and sampled gauge timeseries.
  EXPECT_GT(doc_s.totals.counters.at("fabric.packets_delivered"), 0u);
  ASSERT_TRUE(doc_s.totals.histograms.count("fabric.pkt_latency_ns"));
  EXPECT_GT(doc_s.totals.histograms.at("fabric.pkt_latency_ns").count, 0u);
  ASSERT_FALSE(doc_s.timeseries.empty());
  for (const obs::Timeseries& ts : doc_s.timeseries) {
    EXPECT_FALSE(ts.empty());
    EXPECT_FALSE(ts.label.empty());
    EXPECT_EQ(ts.period, bench.sample_period);
  }

  // Sampling must not perturb the simulation: same makespans and event
  // counts as the unsampled grid.
  const std::vector<MotifCell> unsampled =
      run_motif_grid(mini_bench(), cases, 1);
  ASSERT_EQ(unsampled.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].rvma.makespan, unsampled[i].rvma.makespan) << i;
    EXPECT_EQ(serial[i].rdma.engine_events, unsampled[i].rdma.engine_events)
        << i;
  }
}

TEST(SweepDeterminism, StaticRoutingUsesNextHopCache) {
  const MotifBenchConfig bench = mini_bench();
  const MotifRunOutput cached =
      run_motif_once(bench, net::TopologyKind::kTorus3D, net::Routing::kStatic,
                     Bandwidth::gbps(100), true, 1);
  EXPECT_GT(cached.route_cache_hits, 0u);

  const MotifRunOutput adaptive = run_motif_once(
      bench, net::TopologyKind::kTorus3D, net::Routing::kAdaptive,
      Bandwidth::gbps(100), true, 1);
  EXPECT_EQ(adaptive.route_cache_hits, 0u);
}

TEST(SweepDeterminism, RunSeedsAreStableAndDistinct) {
  const std::uint64_t base = 2021;
  EXPECT_EQ(derive_run_seed(base, 3, 1, true), derive_run_seed(base, 3, 1, true));
  std::set<std::uint64_t> seeds;
  for (std::uint64_t c = 0; c < 8; ++c) {
    for (std::uint64_t s = 0; s < 4; ++s) {
      seeds.insert(derive_run_seed(base, c, s, false));
      seeds.insert(derive_run_seed(base, c, s, true));
    }
  }
  EXPECT_EQ(seeds.size(), 8u * 4u * 2u);  // no collisions across the grid
  EXPECT_NE(derive_run_seed(base, 0, 0, false), derive_run_seed(base + 1, 0, 0, false));
}

}  // namespace
}  // namespace rvma::motifs
