// Tests for the public rvma.h library surface (src/api): handle
// lifecycle, capture/put/get/flush/poll, the paper window calls over
// handles, and the byte-identity gates for the API-layer motifs
// (remote_paging / kv_store / alltoall) across shard counts, topologies,
// and grid job counts.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "api/rvma.h"
#include "cluster/cluster.hpp"
#include "core/endpoint.hpp"
#include "scenario/figure_grid.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"

namespace {

using rvma::scenario::GridCell;
using rvma::scenario::GridSpec;
using rvma::scenario::ScenarioResult;
using rvma::scenario::ScenarioSpec;

rvma::net::NetworkConfig star(int nodes) {
  rvma::net::NetworkConfig cfg;
  cfg.topology = rvma::net::TopologyKind::kStar;
  cfg.nodes_hint = nodes;
  return cfg;
}

/// Two-node serial cluster with one API context per node. Calls made
/// before engine().run() model time-zero application setup, exactly as
/// the legacy C-API tests do.
class ApiTest : public ::testing::Test {
 protected:
  ApiTest() : cluster_(star(2), rvma::nic::NicParams{}) {
    a_ = rvma_initialize(&cluster_, 0);
    b_ = rvma_initialize(&cluster_, 1);
  }
  ~ApiTest() override {
    rvma_finalize(a_);
    rvma_finalize(b_);
  }

  rvma::cluster::Cluster cluster_;
  rvma_ctx a_ = nullptr;
  rvma_ctx b_ = nullptr;
};

TEST_F(ApiTest, ContextLifecycle) {
  EXPECT_EQ(rvma_initialize(nullptr, 0), nullptr);
  EXPECT_EQ(rvma_initialize(&cluster_, -1), nullptr);
  EXPECT_EQ(rvma_initialize(&cluster_, 2), nullptr);
  ASSERT_NE(a_, nullptr);
  ASSERT_NE(b_, nullptr);
  EXPECT_EQ(rvma_ctx_node(a_), 0);
  EXPECT_EQ(rvma_ctx_node(b_), 1);
  EXPECT_EQ(rvma_ctx_node(nullptr), -1);

  rvma::core::RvmaEndpoint ep(cluster_.nic(0), rvma::core::RvmaParams{});
  rvma_ctx wrapped = rvma_wrap_endpoint(&ep);
  ASSERT_NE(wrapped, nullptr);
  EXPECT_EQ(rvma_ctx_node(wrapped), 0);
  rvma_finalize(wrapped);  // must not free the borrowed endpoint
  EXPECT_EQ(rvma_wrap_endpoint(nullptr), nullptr);
}

TEST_F(ApiTest, CapturePutFlushPollRoundTrip) {
  std::vector<unsigned char> dst(64, 0);
  rvma_win win = rvma_capture_at(b_, 0x1000, dst.data(), 64);
  ASSERT_NE(win, nullptr);
  EXPECT_EQ(rvma_win_vaddr(win), 0x1000u);

  std::vector<unsigned char> payload(64, 0x7E);
  EXPECT_EQ(rvma_flush(a_, 1), RVMA_SUCCESS);  // nothing in flight yet
  ASSERT_EQ(rvma_put(a_, payload.data(), 1, 0x1000, 64), RVMA_SUCCESS);
  EXPECT_EQ(rvma_flush(a_, 1), RVMA_ERR_PENDING);
  EXPECT_EQ(rvma_flush(a_, RVMA_ALL_PROCS), RVMA_ERR_PENDING);

  cluster_.engine().run();

  EXPECT_EQ(rvma_flush(a_, 1), RVMA_SUCCESS);
  EXPECT_EQ(rvma_flush(a_, RVMA_ALL_PROCS), RVMA_SUCCESS);
  EXPECT_EQ(dst[0], 0x7E);
  EXPECT_EQ(dst[63], 0x7E);
  EXPECT_EQ(rvma_win_completions(win), 1u);

  rvma_completion c{};
  ASSERT_EQ(rvma_poll(b_, &c), 1);
  EXPECT_EQ(c.virtual_addr, 0x1000u);
  EXPECT_EQ(c.buf, dst.data());
  EXPECT_EQ(c.len, 64);
  EXPECT_EQ(rvma_poll(b_, &c), 0);  // queue drained
  EXPECT_EQ(rvma_poll(a_, nullptr), 0);

  EXPECT_EQ(rvma_release(b_, win), RVMA_SUCCESS);
}

TEST_F(ApiTest, FlushWaitFiresAfterInjection) {
  std::vector<unsigned char> dst(32, 0);
  rvma_win win = rvma_capture_at(b_, 0x2000, dst.data(), 32);
  ASSERT_NE(win, nullptr);

  int fired = 0;
  auto bump = [](void* arg) { ++*static_cast<int*>(arg); };
  // Idle ctx: fires synchronously.
  EXPECT_EQ(rvma_flush_wait(a_, 1, bump, &fired), RVMA_SUCCESS);
  EXPECT_EQ(fired, 1);

  std::vector<unsigned char> payload(32, 0x11);
  ASSERT_EQ(rvma_put(a_, payload.data(), 1, 0x2000, 32), RVMA_SUCCESS);
  EXPECT_EQ(rvma_flush_wait(a_, 1, bump, &fired), RVMA_ERR_PENDING);
  EXPECT_EQ(rvma_flush_wait(a_, RVMA_ALL_PROCS, bump, &fired),
            RVMA_ERR_PENDING);
  EXPECT_EQ(fired, 1);
  cluster_.engine().run();
  EXPECT_EQ(fired, 3);  // both waiters fired exactly once
  EXPECT_EQ(rvma_release(b_, win), RVMA_SUCCESS);
}

TEST_F(ApiTest, GetAutoCapturesReplyWindow) {
  std::vector<unsigned char> data(128);
  for (int i = 0; i < 128; ++i) data[i] = static_cast<unsigned char>(i);
  rvma_win win = rvma_capture_at(b_, 0x3000, data.data(), 128);
  ASSERT_NE(win, nullptr);

  // No pre-posted reply mailbox anywhere: the reply window is captured
  // over `local` automatically and torn down after the reply lands.
  std::vector<unsigned char> local(128, 0);
  ASSERT_EQ(rvma_get(a_, 1, 0x3000, 128, local.data()), RVMA_SUCCESS);
  cluster_.engine().run();

  EXPECT_EQ(std::memcmp(local.data(), data.data(), 128), 0);
  rvma_completion c{};
  ASSERT_EQ(rvma_poll(a_, &c), 1);  // reply completion is pollable
  EXPECT_EQ(c.buf, local.data());
  EXPECT_EQ(c.len, 128);
  EXPECT_EQ(rvma_release(b_, win), RVMA_SUCCESS);
}

TEST_F(ApiTest, GetExCallbackAndExplicitMailbox) {
  std::vector<unsigned char> data(64, 0xAB);
  rvma_win src = rvma_capture_at(b_, 0x4000, data.data(), 64);
  ASSERT_NE(src, nullptr);

  // Satellite gate: an explicit reply vaddr that names no posted mailbox
  // fails loudly, never a silent drop.
  std::vector<unsigned char> local(64, 0);
  EXPECT_EQ(rvma_get_ex(a_, 1, 0x4000, 0, 64, local.data(), 0xDEAD, nullptr,
                        nullptr),
            RVMA_ERR_NO_MAILBOX);

  // Pre-posted reply mailbox + completion callback.
  rvma_win reply = rvma_init_window(a_, 0x5000, nullptr, 64,
                                    RVMA_EPOCH_BYTES);
  ASSERT_NE(reply, nullptr);
  ASSERT_EQ(rvma_post_buffer(reply, local.data(), 64, nullptr),
            RVMA_SUCCESS);
  int64_t got = 0;
  auto on_reply = [](void* arg, void*, int64_t len) {
    *static_cast<int64_t*>(arg) = len;
  };
  ASSERT_EQ(rvma_get_ex(a_, 1, 0x4000, 0, 64, nullptr, 0x5000, on_reply,
                        &got),
            RVMA_SUCCESS);
  cluster_.engine().run();
  EXPECT_EQ(got, 64);
  EXPECT_EQ(local[0], 0xAB);
  EXPECT_EQ(rvma_release(a_, reply), RVMA_SUCCESS);
  EXPECT_EQ(rvma_release(b_, src), RVMA_SUCCESS);
}

TEST_F(ApiTest, CatchAllReceivesUnknownVaddr) {
  rvma_win ca = rvma_init_catch_all(b_, 64, RVMA_EPOCH_BYTES);
  ASSERT_NE(ca, nullptr);
  std::vector<unsigned char> buf(64, 0);
  ASSERT_EQ(rvma_post_buffer(ca, buf.data(), 64, nullptr), RVMA_SUCCESS);

  std::vector<unsigned char> payload(64, 0x55);
  ASSERT_EQ(rvma_put(a_, payload.data(), 1, 0x9999DEAD, 64), RVMA_SUCCESS);
  cluster_.engine().run();

  EXPECT_EQ(rvma_win_completions(ca), 1u);
  EXPECT_EQ(buf[0], 0x55);
  rvma_completion c{};
  ASSERT_EQ(rvma_poll(b_, &c), 1);
  EXPECT_EQ(c.virtual_addr, rvma_win_vaddr(ca));
  EXPECT_EQ(rvma_release(b_, ca), RVMA_SUCCESS);
}

TEST_F(ApiTest, WindowEpochAndRewind) {
  uint64_t key = 0;
  rvma_win win = rvma_init_window(b_, 0x6000, &key, 32, RVMA_EPOCH_BYTES);
  ASSERT_NE(win, nullptr);
  EXPECT_NE(key, 0u);
  std::vector<unsigned char> epoch0(32, 0), epoch1(32, 0);
  ASSERT_EQ(rvma_post_buffer(win, epoch0.data(), 32, nullptr), RVMA_SUCCESS);
  ASSERT_EQ(rvma_post_buffer(win, epoch1.data(), 32, nullptr), RVMA_SUCCESS);
  EXPECT_EQ(rvma_win_get_epoch(win), 0);

  std::vector<unsigned char> payload(32, 0xC3);
  ASSERT_EQ(rvma_put(a_, payload.data(), 1, 0x6000, 32), RVMA_SUCCESS);
  ASSERT_EQ(rvma_put(a_, payload.data(), 1, 0x6000, 32), RVMA_SUCCESS);
  cluster_.engine().run();

  EXPECT_EQ(rvma_win_get_epoch(win), 2);
  EXPECT_EQ(rvma_win_completions(win), 2u);
  void* old_buf = nullptr;
  int64_t old_len = 0;
  ASSERT_EQ(rvma_win_rewind(win, 1, &old_buf, &old_len), RVMA_SUCCESS);
  EXPECT_EQ(old_buf, epoch1.data());  // most recent completed epoch
  EXPECT_EQ(old_len, 32);
  ASSERT_EQ(rvma_win_rewind(win, 2, &old_buf, &old_len), RVMA_SUCCESS);
  EXPECT_EQ(old_buf, epoch0.data());

  EXPECT_EQ(rvma_win_close(win), RVMA_SUCCESS);
  rvma_win_free(win);
}

TEST_F(ApiTest, ObserverSeesEveryCompletion) {
  std::vector<unsigned char> b0(16, 0), b1(16, 0);
  rvma_win win = rvma_init_window(b_, 0x7000, nullptr, 16, RVMA_EPOCH_BYTES);
  ASSERT_NE(win, nullptr);
  ASSERT_EQ(rvma_post_buffer(win, b0.data(), 16, nullptr), RVMA_SUCCESS);
  ASSERT_EQ(rvma_post_buffer(win, b1.data(), 16, nullptr), RVMA_SUCCESS);
  int count = 0;
  rvma_win_observe(win, [](void* arg, void*, int64_t) {
    ++*static_cast<int*>(arg);
  }, &count);

  std::vector<unsigned char> payload(16, 0x01);
  ASSERT_EQ(rvma_put(a_, payload.data(), 1, 0x7000, 16), RVMA_SUCCESS);
  ASSERT_EQ(rvma_put(a_, payload.data(), 1, 0x7000, 16), RVMA_SUCCESS);
  cluster_.engine().run();
  EXPECT_EQ(count, 2);
  EXPECT_EQ(rvma_release(b_, win), RVMA_SUCCESS);
}

TEST_F(ApiTest, WinFreeKeepsLiveWindowSafe) {
  // rvma_win_free drops the handle while the window — and its posted
  // buffer's completion registration — stays live. The completion slot is
  // context-owned, so the later epoch roll must not touch freed memory
  // and the completion stays pollable.
  std::vector<unsigned char> dst(32, 0);
  rvma_win win = rvma_capture_at(b_, 0x8000, dst.data(), 32);
  ASSERT_NE(win, nullptr);
  rvma_win_free(win);

  std::vector<unsigned char> payload(32, 0x42);
  ASSERT_EQ(rvma_put(a_, payload.data(), 1, 0x8000, 32), RVMA_SUCCESS);
  cluster_.engine().run();

  EXPECT_EQ(dst[0], 0x42);
  rvma_completion c{};
  ASSERT_EQ(rvma_poll(b_, &c), 1);
  EXPECT_EQ(c.virtual_addr, 0x8000u);
  EXPECT_EQ(c.len, 32);
}

TEST_F(ApiTest, FlushCoversGets) {
  // The rvma.h contract counts gets in flush: PENDING until the get
  // request has been handed to the NIC injection link.
  std::vector<unsigned char> data(64, 0x5A);
  rvma_win src = rvma_capture_at(b_, 0x9000, data.data(), 64);
  ASSERT_NE(src, nullptr);

  std::vector<unsigned char> local(64, 0);
  EXPECT_EQ(rvma_flush(a_, 1), RVMA_SUCCESS);
  ASSERT_EQ(rvma_get(a_, 1, 0x9000, 64, local.data()), RVMA_SUCCESS);
  EXPECT_EQ(rvma_flush(a_, 1), RVMA_ERR_PENDING);
  EXPECT_EQ(rvma_flush(a_, RVMA_ALL_PROCS), RVMA_ERR_PENDING);
  cluster_.engine().run();
  EXPECT_EQ(rvma_flush(a_, 1), RVMA_SUCCESS);
  EXPECT_EQ(rvma_flush(a_, RVMA_ALL_PROCS), RVMA_SUCCESS);
  EXPECT_EQ(local[0], 0x5A);
  EXPECT_EQ(rvma_release(b_, src), RVMA_SUCCESS);
}

TEST_F(ApiTest, FinalizeOnWrappedEndpointDetachesState) {
  // A borrowed endpoint survives its wrapping ctx. Finalize must remove
  // every endpoint-side reference into the dead ctx — the per-vaddr
  // completion observers and the ctx-owned completion slots posted
  // buffers were registered with — so a later completion on the still
  // live window touches neither.
  auto ep = std::make_unique<rvma::core::RvmaEndpoint>(
      cluster_.nic(1), rvma::core::RvmaParams{});
  rvma_ctx wrapped = rvma_wrap_endpoint(ep.get());
  ASSERT_NE(wrapped, nullptr);
  std::vector<unsigned char> dst(32, 0);
  rvma_win win = rvma_capture_at(wrapped, 0xA000, dst.data(), 32);
  ASSERT_NE(win, nullptr);
  rvma_win_free(win);
  rvma_finalize(wrapped);  // ctx gone; window on `ep` still live

  std::vector<unsigned char> payload(32, 0x77);
  ASSERT_EQ(rvma_put(a_, payload.data(), 1, 0xA000, 32), RVMA_SUCCESS);
  cluster_.engine().run();

  EXPECT_EQ(dst[0], 0x77);  // payload still lands
  EXPECT_EQ(ep->completions(0xA000), 1u);
}

// ---- API-motif byte-identity gates -------------------------------------

ScenarioSpec motif_spec(const std::string& motif, const std::string& topo) {
  ScenarioSpec spec;
  spec.topology = topo;
  spec.nodes = 8;
  spec.motif = motif;
  if (motif == "remote_paging") {
    spec.motif_params = {{"pages_per_rank", "4"}, {"faults", "6"}};
  } else if (motif == "kv_store") {
    spec.motif_params = {{"servers", "2"}, {"requests", "4"},
                         {"outstanding", "2"}};
  } else {
    spec.motif_params = {{"bytes", "2KiB"}, {"iterations", "2"}};
  }
  return spec;
}

ScenarioResult run_ok(const ScenarioSpec& spec) {
  ScenarioResult result;
  std::string error;
  EXPECT_TRUE(rvma::scenario::run_scenario(spec, &result, &error))
      << spec.motif << "/" << spec.topology << ": " << error;
  return result;
}

/// Engine-internal scheduler counters differ between the serial and the
/// windowed scheduler by construction (window wake events); the repo's
/// shards-vs-serial identity contract (test_pdes_matrix) compares
/// everything observable EXCEPT those. Same normalization here.
ScenarioResult normalize_engine_internals(ScenarioResult r) {
  r.engine_events = 0;
  r.metrics.counters.erase("engine.events_executed");
  r.metrics.counters.erase("engine.events_scheduled");
  return r;
}

/// Acceptance gate: every new motif runs on all five topologies and the
/// sharded runs (--par-shards 2 and 4) are byte-identical to serial in
/// every application-visible field.
TEST(ApiMotifIdentity, SerialVsShardsAcrossTopologies) {
  const std::vector<std::string> topologies = {"star", "torus3d", "fattree",
                                               "dragonfly", "hyperx"};
  for (const std::string& motif : {"remote_paging", "kv_store", "alltoall"}) {
    for (const std::string& topo : topologies) {
      ScenarioSpec spec = motif_spec(motif, topo);
      const ScenarioResult serial = normalize_engine_internals(run_ok(spec));
      EXPECT_GT(serial.makespan, 0) << motif << "/" << topo;
      EXPECT_GT(serial.packets_delivered, 0u) << motif << "/" << topo;
      for (int shards : {2, 4}) {
        spec.par_shards = shards;
        const ScenarioResult sharded =
            normalize_engine_internals(run_ok(spec));
        EXPECT_EQ(sharded, serial)
            << motif << "/" << topo << " @ par_shards=" << shards;
      }
    }
  }
}

/// doorbell_batch=1 must reproduce the unbatched schedule byte-for-byte;
/// batch>1 must strictly reduce NIC doorbells on a doorbell-heavy motif.
TEST(ApiMotifIdentity, DoorbellBatchingGate) {
  ScenarioSpec spec = motif_spec("kv_store", "star");
  const ScenarioResult base = run_ok(spec);
  spec.doorbell_batch = 1;
  EXPECT_EQ(run_ok(spec), base);

  spec.doorbell_batch = 8;
  const ScenarioResult batched = run_ok(spec);
  const auto base_db = base.metrics.counters.at("nic.doorbells");
  const auto batched_db = batched.metrics.counters.at("nic.doorbells");
  EXPECT_LT(batched_db, base_db);
  EXPECT_EQ(base.metrics.counters.at("nic.doorbells_merged"), 0u);
  EXPECT_GT(batched.metrics.counters.at("nic.doorbells_merged"), 0u);
  // Merged or not, every send crosses PCIe exactly once.
  EXPECT_EQ(batched_db + batched.metrics.counters.at("nic.doorbells_merged"),
            base_db);
}

/// Mini grid over an API motif: jobs=1 and jobs=4 agree cell-for-cell.
TEST(ApiMotifIdentity, GridJobsIdentity) {
  GridSpec grid;
  grid.figure = "api-mini";
  grid.motif_label = "KvStore";
  grid.base = motif_spec("kv_store", "star");
  grid.cases = {"star-static", "torus3d-static"};
  grid.gbps = {100, 400};
  std::vector<GridCell> serial, parallel;
  std::string error;
  ASSERT_TRUE(rvma::scenario::run_grid(grid, 1, &serial, &error)) << error;
  ASSERT_TRUE(rvma::scenario::run_grid(grid, 4, &parallel, &error)) << error;
  ASSERT_EQ(serial.size(), parallel.size());
  EXPECT_EQ(serial, parallel);
}

}  // namespace
