// Flight-recorder contracts: ring wraparound, binary round-trip, the
// zero-perturbation guarantee (recorder on vs off produces identical
// results and metrics, serial and sharded), the Perfetto export golden,
// the PDES runtime profile, and the shard-safe armed tracer.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/trace.hpp"
#include "motifs/halo3d.hpp"
#include "motifs/runner.hpp"
#include "motifs/rvma_transport.hpp"
#include "obs/flight_analysis.hpp"
#include "obs/flight_recorder.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"

namespace rvma {
namespace {

using motifs::MotifRunner;
using motifs::RvmaTransport;
using scenario::ScenarioResult;
using scenario::ScenarioSpec;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// ------------------------------------------------------------- ring core

TEST(FlightRecorder, StartsEmpty) {
  obs::FlightRecorder rec(16);
  EXPECT_EQ(rec.capacity(), 16u);
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.dropped(), 0u);
  EXPECT_TRUE(rec.snapshot().empty());
}

TEST(FlightRecorder, RingWrapsOverwritingOldest) {
  obs::FlightRecorder rec(8);
  for (std::uint64_t i = 0; i < 20; ++i) {
    rec.record(/*t=*/i, obs::SpanKind::kMsgPost, /*key=*/i, /*node=*/1,
               /*aux=*/static_cast<std::int64_t>(i));
  }
  EXPECT_EQ(rec.size(), 8u);
  EXPECT_EQ(rec.dropped(), 12u);
  const auto records = rec.snapshot();
  ASSERT_EQ(records.size(), 8u);
  // Oldest-first chronological order, holding the last 8 records.
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].t, 12 + i);
    EXPECT_EQ(records[i].key, 12 + i);
  }
}

TEST(FlightRecorder, ClearResetsEverything) {
  obs::FlightRecorder rec(4);
  for (int i = 0; i < 9; ++i) {
    rec.record(i, obs::SpanKind::kPktDeliver, 1, 0, 0);
  }
  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.dropped(), 0u);
  rec.record(42, obs::SpanKind::kMsgPost, 7, 3, 64);
  const auto records = rec.snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].t, 42u);
}

// ------------------------------------------------------- binary file I/O

TEST(FlightRecorder, BinaryRoundTrip) {
  obs::FlightRecorder a(16);
  obs::FlightRecorder b(4);
  a.record(10, obs::SpanKind::kMsgPost, 0x100000001ULL, 0, 4096);
  a.record(20, obs::SpanKind::kTxInject, 0x100000001ULL, 0, 0);
  for (int i = 0; i < 6; ++i) {  // wraps: only the last 4 survive
    b.record(30 + i, obs::SpanKind::kPktDeliver, 0x100000001ULL, 1, i);
  }

  const std::string path = ::testing::TempDir() + "flight_roundtrip.rvfr";
  std::string error;
  ASSERT_TRUE(obs::write_flight_file(path, {&a, &b}, &error)) << error;

  obs::FlightDump dump;
  ASSERT_TRUE(obs::read_flight_file(path, &dump, &error)) << error;
  ASSERT_EQ(dump.shards.size(), 2u);
  EXPECT_EQ(dump.shards[0].shard, 0u);
  EXPECT_EQ(dump.shards[1].shard, 1u);
  EXPECT_EQ(dump.shards[0].dropped, 0u);
  EXPECT_EQ(dump.shards[1].dropped, 2u);
  EXPECT_EQ(dump.total_records(), 6u);

  const auto a_records = a.snapshot();
  ASSERT_EQ(dump.shards[0].records.size(), a_records.size());
  for (std::size_t i = 0; i < a_records.size(); ++i) {
    EXPECT_EQ(dump.shards[0].records[i].t, a_records[i].t);
    EXPECT_EQ(dump.shards[0].records[i].key, a_records[i].key);
    EXPECT_EQ(dump.shards[0].records[i].aux, a_records[i].aux);
    EXPECT_EQ(dump.shards[0].records[i].kind, a_records[i].kind);
    EXPECT_EQ(dump.shards[0].records[i].node, a_records[i].node);
  }
  // merged(): global (t, shard, index) order across shard sections.
  const auto merged = dump.merged();
  ASSERT_EQ(merged.size(), 6u);
  EXPECT_TRUE(std::is_sorted(
      merged.begin(), merged.end(),
      [](const obs::SpanRecord& x, const obs::SpanRecord& y) {
        return x.t < y.t;
      }));
  std::remove(path.c_str());
}

TEST(FlightRecorder, ReadRejectsBadMagic) {
  const std::string path = ::testing::TempDir() + "flight_bad.rvfr";
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOTAFLIGHTRECORDERFILE";
  }
  obs::FlightDump dump;
  std::string error;
  EXPECT_FALSE(obs::read_flight_file(path, &dump, &error));
  EXPECT_FALSE(error.empty());
  std::remove(path.c_str());
}

// --------------------------------------- zero-perturbation (on == off)

ScenarioSpec mini_spec() {
  ScenarioSpec spec;
  spec.topology = "torus3d";
  spec.routing = "static";
  spec.nodes = 8;
  spec.motif = "halo3d";
  spec.motif_params = {{"iterations", "2"}, {"nx", "8"}, {"ny", "8"},
                       {"nz", "8"}};
  spec.seed = 2021;
  return spec;
}

TEST(FlightRecorderScenario, RecorderOnVsOffIsBitIdentical) {
  const std::string dump_path = ::testing::TempDir() + "flight_onoff.rvfr";
  std::string error;

  ScenarioResult off;
  ASSERT_TRUE(run_scenario(mini_spec(), &off, &error)) << error;

  ScenarioSpec on_spec = mini_spec();
  on_spec.flight_recorder_path = dump_path;
  ScenarioResult on;
  ASSERT_TRUE(run_scenario(on_spec, &on, &error)) << error;

  // The recorder is purely passive: every simulated observable — makespan,
  // packet counts, engine events, the full metrics snapshot — must match
  // the disarmed run exactly.
  EXPECT_EQ(off, on);

  obs::FlightDump dump;
  ASSERT_TRUE(obs::read_flight_file(dump_path, &dump, &error)) << error;
  EXPECT_GT(dump.total_records(), 0u);
  std::remove(dump_path.c_str());
}

TEST(FlightRecorderScenario, RecorderOnVsOffIsBitIdenticalSharded) {
  const std::string dump_path = ::testing::TempDir() + "flight_onoff_sh.rvfr";
  std::string error;

  ScenarioSpec off_spec = mini_spec();
  off_spec.par_shards = 2;
  ScenarioResult off;
  ASSERT_TRUE(run_scenario(off_spec, &off, &error)) << error;

  ScenarioSpec on_spec = off_spec;
  on_spec.flight_recorder_path = dump_path;
  ScenarioResult on;
  ASSERT_TRUE(run_scenario(on_spec, &on, &error)) << error;
  EXPECT_EQ(off, on);

  // The dump carries one section per shard and replays byte-identically.
  obs::FlightDump dump;
  ASSERT_TRUE(obs::read_flight_file(dump_path, &dump, &error)) << error;
  EXPECT_EQ(dump.shards.size(), 2u);
  const std::string first_bytes = read_file(dump_path);
  ASSERT_TRUE(run_scenario(on_spec, &on, &error)) << error;
  EXPECT_EQ(read_file(dump_path), first_bytes);
  std::remove(dump_path.c_str());
}

// ------------------------------------------------ message-path analysis

TEST(FlightAnalysis, ReconstructsCompletePathsFromARun) {
  const std::string dump_path = ::testing::TempDir() + "flight_paths.rvfr";
  ScenarioSpec spec = mini_spec();
  spec.flight_recorder_path = dump_path;
  ScenarioResult result;
  std::string error;
  ASSERT_TRUE(run_scenario(spec, &result, &error)) << error;

  obs::FlightDump dump;
  ASSERT_TRUE(obs::read_flight_file(dump_path, &dump, &error)) << error;
  const auto paths = obs::build_message_paths(dump);
  ASSERT_FALSE(paths.empty());
  std::size_t complete = 0;
  for (const auto& p : paths) {
    if (!p.complete()) continue;
    ++complete;
    // Lifecycle instants are causally ordered within a message.
    EXPECT_LE(p.post_t, p.first_inject_t);
    EXPECT_LE(p.first_inject_t, p.last_deliver_t);
    EXPECT_LE(p.last_deliver_t, p.last_rx_t);
    EXPECT_LE(p.last_rx_t, p.match_t);
    EXPECT_GT(p.packets, 0u);
    EXPECT_EQ(p.total_ps(),
              p.host_ps() + p.wire_ps() + p.rx_ps() + p.match_ps());
  }
  // A capacity-default ring on this mini run holds every span: every
  // message reconstructs completely (messages posted at t=0 included).
  EXPECT_EQ(complete, paths.size());

  const auto report = obs::build_critpath(paths);
  EXPECT_EQ(report.messages, complete);
  EXPECT_EQ(report.partial, 0u);
  ASSERT_EQ(report.segments.size(), 5u);
  EXPECT_EQ(report.segments[4].name, "total");
  EXPECT_GT(report.segments[4].p50, 0u);
  EXPECT_FALSE(obs::format_critpath(report).empty());
  std::remove(dump_path.c_str());
}

TEST(FlightAnalysis, PerfettoJsonMatchesGolden) {
  // 4-node star run pinned byte-for-byte: the timeline export is part of
  // the observable output surface, same discipline as the fig8 table
  // golden. Regenerate with:
  //   rvma_run <spec> --flight-recorder=d.rvfr &&
  //   rvma_trace timeline d.rvfr --out=tests/golden/flight_timeline.golden.json
  // using the exact spec below.
  const std::string dump_path = ::testing::TempDir() + "flight_golden.rvfr";
  ScenarioSpec spec;
  spec.topology = "star";
  spec.routing = "static";
  spec.nodes = 4;
  spec.motif = "halo3d";
  spec.motif_params = {{"iterations", "1"}, {"nx", "4"}, {"ny", "4"},
                       {"nz", "4"}};
  spec.seed = 2021;
  spec.flight_recorder_path = dump_path;
  ScenarioResult result;
  std::string error;
  ASSERT_TRUE(run_scenario(spec, &result, &error)) << error;

  obs::FlightDump dump;
  ASSERT_TRUE(obs::read_flight_file(dump_path, &dump, &error)) << error;
  const std::string json = obs::perfetto_json(dump);

  const std::string golden =
      read_file(std::string(GOLDEN_DIR) + "/flight_timeline.golden.json");
  ASSERT_FALSE(golden.empty());
  EXPECT_EQ(json, golden);
  std::remove(dump_path.c_str());
}

// ------------------------------------------------- PDES runtime profile

TEST(PdesProfile, SerialClusterReportsOneFullyUtilizedShard) {
  net::NetworkConfig cfg;
  cfg.topology = net::TopologyKind::kTorus3D;
  cfg.nodes_hint = 8;
  cluster::Cluster cluster(cfg, nic::NicParams{});
  const obs::MetricsSnapshot prof = cluster.collect_pdes_profile();
  EXPECT_EQ(prof.counters.at("pdes.shards"), 1);
  EXPECT_EQ(prof.gauges.at("pdes.shard0.utilization_pct"), 100);
}

TEST(PdesProfile, ShardedRunExposesPerShardInstruments) {
  net::NetworkConfig cfg;
  cfg.topology = net::TopologyKind::kTorus3D;
  cfg.nodes_hint = 8;
  cluster::Cluster cluster(cfg, nic::NicParams{}, /*par_shards=*/2);
  ASSERT_TRUE(cluster.sharded());
  cluster.enable_pdes_profiling();

  motifs::Halo3DConfig halo;
  halo.px = halo.py = 2;
  halo.pz = 2;
  halo.nx = halo.ny = halo.nz = 8;
  halo.iterations = 2;
  RvmaTransport transport(cluster, core::RvmaParams{});
  MotifRunner(cluster, transport, motifs::build_halo3d(halo)).run();

  const obs::MetricsSnapshot prof = cluster.collect_pdes_profile();
  EXPECT_EQ(prof.counters.at("pdes.shards"), 2);
  EXPECT_GT(prof.counters.at("pdes.windows"), 0);
  // Lookahead spread gauges over the path-closed matrix: a 2-shard torus
  // slab has symmetric finite pairs, so min == max == mean > 0 and no
  // unreachable pair.
  EXPECT_GT(prof.gauges.at("pdes.lookahead_min_ps"), 0);
  EXPECT_GE(prof.gauges.at("pdes.lookahead_max_ps"),
            prof.gauges.at("pdes.lookahead_min_ps"));
  EXPECT_GE(prof.gauges.at("pdes.lookahead_mean_ps"),
            prof.gauges.at("pdes.lookahead_min_ps"));
  EXPECT_EQ(prof.gauges.at("pdes.lookahead_unreachable_pairs"), 0);
  for (const char* key : {"pdes.shard0.busy_wall_ns",
                          "pdes.shard0.barrier_wait_wall_ns",
                          "pdes.shard0.drain_wall_ns",
                          "pdes.shard0.completion_wall_ns",
                          "pdes.shard1.busy_wall_ns",
                          "pdes.shard1.barrier_wait_wall_ns",
                          "pdes.shard1.drain_wall_ns",
                          "pdes.shard1.completion_wall_ns"}) {
    EXPECT_TRUE(prof.counters.contains(key)) << key;
  }
  for (const char* key :
       {"pdes.shard0.utilization_pct", "pdes.shard1.utilization_pct"}) {
    ASSERT_TRUE(prof.gauges.contains(key)) << key;
    EXPECT_GE(prof.gauges.at(key), 0);
    EXPECT_LE(prof.gauges.at(key), 100);
  }
  // Deterministic parts of the profile: window count and stride histogram
  // are pure functions of the event timeline.
  EXPECT_TRUE(prof.histograms.contains("pdes.window_stride_ps"));
  EXPECT_GT(prof.histograms.at("pdes.window_stride_ps").count, 0u);
  EXPECT_TRUE(prof.histograms.contains("pdes.shard0.drain_depth"));
}

// ----------------------------------------------- shard-safe armed tracer

std::vector<std::string> sorted_lines(const std::string& text) {
  std::istringstream in(text);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  std::sort(lines.begin(), lines.end());
  return lines;
}

TEST(ShardTracer, ShardedRunTracesWithoutClampingToSerial) {
  const std::string dir = ::testing::TempDir();
  const std::string serial_path = dir + "trace_serial.jsonl";
  const std::string sharded_path = dir + "trace_sharded.jsonl";
  const std::string sharded2_path = dir + "trace_sharded2.jsonl";
  std::string error;

  auto traced_run = [&](int shards, const std::string& path,
                        ScenarioResult* out) {
    ScenarioSpec spec = mini_spec();
    spec.par_shards = shards;
    Tracer sink;
    ASSERT_TRUE(sink.open(path));
    ASSERT_TRUE(run_scenario(spec, out, &error, &sink, /*eng_id=*/3)) << error;
    EXPECT_GT(out->trace_events, 0u);
    sink.close();
  };

  ScenarioResult serial, sharded, sharded2;
  traced_run(1, serial_path, &serial);
  traced_run(2, sharded_path, &sharded);
  traced_run(2, sharded2_path, &sharded2);

  // The armed tracer no longer forces serial execution: the sharded run
  // really went through the windowed loop (its extra window-boundary
  // bookkeeping events are the tell — DESIGN.md §12), while every
  // simulated observable stayed identical.
  EXPECT_NE(serial.engine_events, sharded.engine_events);
  EXPECT_EQ(serial.makespan, sharded.makespan);
  EXPECT_EQ(serial.packets_delivered, sharded.packets_delivered);
  // engine.* counters carry those bookkeeping events too; everything the
  // simulation itself recorded must match (test_pdes's Observed contract).
  auto sim_metrics = [](const ScenarioResult& r) {
    obs::MetricsSnapshot m = r.metrics;
    std::erase_if(m.counters,
                  [](const auto& kv) { return kv.first.starts_with("engine."); });
    std::erase_if(m.gauges,
                  [](const auto& kv) { return kv.first.starts_with("engine."); });
    return m;
  };
  EXPECT_EQ(sim_metrics(serial), sim_metrics(sharded));

  // Same trace events in both modes (the merge only fixes the order), and
  // the sharded merge is byte-deterministic across reruns.
  EXPECT_EQ(serial.trace_events, sharded.trace_events);
  EXPECT_EQ(sorted_lines(read_file(serial_path)),
            sorted_lines(read_file(sharded_path)));
  EXPECT_EQ(read_file(sharded_path), read_file(sharded2_path));

  // Merged output is time-sorted: "t":<ps> never decreases line to line.
  std::istringstream in(read_file(sharded_path));
  Time prev = 0;
  for (std::string line; std::getline(in, line);) {
    Time t = 0;
    ASSERT_EQ(std::sscanf(line.c_str(), "{\"t\":%llu",
                          reinterpret_cast<unsigned long long*>(&t)),
              1)
        << line;
    EXPECT_GE(t, prev) << line;
    prev = t;
  }

  for (const std::string& p : {serial_path, sharded_path, sharded2_path}) {
    std::remove(p.c_str());
  }
}

TEST(ShardTracer, BufferModeCollectsJsonl) {
  Tracer tracer;
  tracer.open_buffer();
  EXPECT_TRUE(tracer.enabled());
  tracer.record(100, "evt", 2, {{"a", 1}});
  tracer.record(200, "evt", 2, {});
  EXPECT_EQ(tracer.events_written(), 2u);
  EXPECT_EQ(tracer.buffer(),
            "{\"t\":100,\"ev\":\"evt\",\"eng\":2,\"a\":1}\n"
            "{\"t\":200,\"ev\":\"evt\",\"eng\":2}\n");
  tracer.close();
  EXPECT_FALSE(tracer.enabled());
}

}  // namespace
}  // namespace rvma
