// Per-shard-pair lookahead matrix tests (DESIGN.md §12): the min-plus
// closure helpers, the Cluster's matrix construction over non-uniform
// link latencies, unreachable (+inf) pairs in a hand-built ShardedEngine,
// bit-identity of windowed runs against serial across every topology at
// K in {2, 3, 5}, and the windows_executed regression the matrix buys
// over the scalar global-minimum lookahead on a wavefront workload.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cluster/cluster.hpp"
#include "motifs/halo3d.hpp"
#include "motifs/runner.hpp"
#include "motifs/rvma_transport.hpp"
#include "motifs/sweep3d.hpp"
#include "net/topology.hpp"
#include "sim/engine.hpp"
#include "sim/sharded_engine.hpp"

namespace rvma {
namespace {

using motifs::build_halo3d;
using motifs::build_sweep3d;
using motifs::Halo3DConfig;
using motifs::MotifResult;
using motifs::MotifRunner;
using motifs::RvmaTransport;
using motifs::Sweep3DConfig;

// ------------------------------------------------------- min-plus closure

TEST(LookaheadClosure, TransitivePathsTightenDirectEntries) {
  // The DESIGN.md §12 counterexample: a -> b -> c chains with total
  // latency 2 while the direct a -> c link costs 100. An unclosed matrix
  // would let c run 100 ahead of a — closure must tighten it to 2.
  constexpr Time inf = kTimeInfinity;
  std::vector<Time> la = {
      0, 1, 100,  //
      inf, 0, 1,  //
      inf, inf, 0,
  };
  net::close_min_latency_matrix(la, 3);
  EXPECT_EQ(la[0 * 3 + 1], 1u);
  EXPECT_EQ(la[0 * 3 + 2], 2u);  // through b, not the direct 100
  EXPECT_EQ(la[1 * 3 + 2], 1u);
  // Unreachable stays unreachable; infinity is absorbing, not wrapping.
  EXPECT_EQ(la[1 * 3 + 0], inf);
  EXPECT_EQ(la[2 * 3 + 0], inf);
  EXPECT_EQ(la[2 * 3 + 1], inf);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(la[i * 3 + i], 0u);
}

TEST(LookaheadClosure, SatisfiesTriangleInequality) {
  constexpr Time inf = kTimeInfinity;
  std::vector<Time> la = {
      0,   7,   inf, 40,  //
      3,   0,   9,   inf,  //
      inf, 2,   0,   5,   //
      1,   inf, 60,  0,
  };
  net::close_min_latency_matrix(la, 4);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      for (int m = 0; m < 4; ++m) {
        const Time im = la[i * 4 + m], mj = la[m * 4 + j];
        if (im == inf || mj == inf) continue;
        EXPECT_LE(la[i * 4 + j], im + mj) << i << "->" << m << "->" << j;
      }
    }
  }
}

// ------------------------------------------- Cluster matrix construction

TEST(ClusterLookaheadMatrix, TorusSlabsCloseOverShardDistance) {
  // A 4x4x4 torus cut into 4 slabs along x: adjacent slabs cross with one
  // link latency L, and the wrap-around ring makes shard 0 and shard 3
  // adjacent too, so the closed distance between slabs i and j is
  // min(|i-j|, 4 - |i-j|) * L.
  net::NetworkConfig cfg;
  cfg.topology = net::TopologyKind::kTorus3D;
  cfg.routing = net::Routing::kStatic;
  cfg.nodes_hint = 64;
  cluster::Cluster c(cfg, nic::NicParams{}, 4);
  ASSERT_EQ(c.num_shards(), 4);
  const Time l = cfg.link.latency;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      const int d = i > j ? i - j : j - i;
      const int ring = d < 4 - d ? d : 4 - d;
      EXPECT_EQ(c.lookahead(i, j), static_cast<Time>(ring) * l)
          << i << "->" << j;
    }
  }
  // The scalar baseline equals the matrix minimum: one link crossing.
  EXPECT_EQ(c.lookahead(), l);
}

TEST(ClusterLookaheadMatrix, LongWrapLinksWidenFarPairs) {
  // With 10x wrap-around links the ring shortcut through the long wire is
  // no longer free: shard 0 -> 3 now costs min(3L, Llong) and the matrix
  // is no longer the uniform ring metric.
  net::NetworkConfig cfg;
  cfg.topology = net::TopologyKind::kTorus3D;
  cfg.routing = net::Routing::kStatic;
  cfg.nodes_hint = 64;
  cfg.long_link_latency = 10 * cfg.link.latency;
  cluster::Cluster c(cfg, nic::NicParams{}, 4);
  ASSERT_EQ(c.num_shards(), 4);
  const Time l = cfg.link.latency;
  EXPECT_EQ(c.lookahead(0, 1), l);
  EXPECT_EQ(c.lookahead(0, 2), 2 * l);
  EXPECT_EQ(c.lookahead(0, 3), 3 * l);  // 3 local hops beat the 10L wrap
  EXPECT_EQ(c.lookahead(3, 0), 3 * l);
  EXPECT_EQ(c.lookahead(), l);
}

// --------------------------------------------- unreachable (+inf) pairs

TEST(ShardedEngineMatrix, UnreachablePairNeverConstrainsWindow) {
  // Hand-built two-shard machine where shard 1 can never influence shard
  // 0 (la[1][0] = +inf): shard 0's window must be unbounded — it runs its
  // entire timeline in one window — while shard 1 stays conservatively
  // windowed behind shard 0's posts. The matrix is trivially path-closed.
  sim::Engine a, b;
  sim::ShardedEngine se;
  se.attach(&a);
  se.attach(&b);
  se.set_lookahead_matrix({0, 100, kTimeInfinity, 0});
  EXPECT_TRUE(se.lookahead_is_matrix());
  EXPECT_EQ(se.lookahead(1, 0), kTimeInfinity);
  EXPECT_EQ(se.lookahead(0, 1), 100u);

  int fired = 0;
  for (Time t : {Time{10}, Time{500}, Time{90000}}) {
    a.schedule_at(t, [&, t] {
      se.post(0, 1, t + 100, sim::Callback([&, when = t + 100] {
                b.schedule_at_ranked(when, 0, 0, [&] { ++fired; });
              }));
    });
  }
  b.schedule_at(5, [&] { ++fired; });

  const Time end = se.run_windowed();
  EXPECT_EQ(fired, 4);
  EXPECT_GE(end, 90100u);
  EXPECT_EQ(a.pending(), 0u);
  EXPECT_EQ(b.pending(), 0u);
}

// ------------------------------- bit-identity across topologies and K

net::NetworkConfig topo_cfg(net::TopologyKind kind) {
  net::NetworkConfig cfg;
  cfg.topology = kind;
  cfg.routing = net::Routing::kStatic;
  cfg.nodes_hint = 64;
  // Non-uniform latencies: the long tier (torus wrap, dragonfly global,
  // fat-tree agg<->core, hyperx dim-1) at 7x — the matrix's entries then
  // genuinely differ per pair, which is the case worth gating.
  cfg.long_link_latency = 700 * kNanosecond;
  cfg.seed = 7;
  return cfg;
}

struct Observed {
  MotifResult result;
  net::FabricStats fabric;
};

Observed run_halo(net::TopologyKind kind, int par_shards) {
  cluster::Cluster cluster(topo_cfg(kind), nic::NicParams{}, par_shards);
  RvmaTransport transport(cluster, core::RvmaParams{});
  Halo3DConfig halo;
  halo.px = halo.py = halo.pz = 4;  // 64 ranks
  halo.nx = halo.ny = halo.nz = 4;
  halo.iterations = 2;
  halo.compute_per_cell = 0;
  Observed obs;
  obs.result = MotifRunner(cluster, transport, build_halo3d(halo)).run();
  obs.fabric = cluster.fabric_stats();
  return obs;
}

void expect_identical(const Observed& serial, const Observed& sharded) {
  EXPECT_EQ(serial.result.makespan, sharded.result.makespan);
  EXPECT_EQ(serial.result.ops_executed, sharded.result.ops_executed);
  EXPECT_EQ(serial.result.transport.data_messages,
            sharded.result.transport.data_messages);
  EXPECT_EQ(serial.result.transport.control_messages,
            sharded.result.transport.control_messages);
  EXPECT_EQ(serial.fabric.packets_injected, sharded.fabric.packets_injected);
  EXPECT_EQ(serial.fabric.packets_delivered,
            sharded.fabric.packets_delivered);
  EXPECT_EQ(serial.fabric.total_hops, sharded.fabric.total_hops);
  EXPECT_EQ(serial.fabric.wire_bytes_delivered,
            sharded.fabric.wire_bytes_delivered);
  EXPECT_EQ(serial.fabric.max_port_backlog, sharded.fabric.max_port_backlog);
}

TEST(PdesMatrixExactness, AllTopologiesMatchSerialAtK235) {
  for (net::TopologyKind kind :
       {net::TopologyKind::kStar, net::TopologyKind::kTorus3D,
        net::TopologyKind::kFatTree, net::TopologyKind::kDragonfly,
        net::TopologyKind::kHyperX}) {
    SCOPED_TRACE(static_cast<int>(kind));
    const Observed serial = run_halo(kind, 1);
    for (int k : {2, 3, 5}) {
      SCOPED_TRACE(k);
      const Observed sharded = run_halo(kind, k);
      expect_identical(serial, sharded);
    }
  }
}

// ------------------------------------- windows regression vs scalar mode

TEST(PdesMatrixWindows, WavefrontNeedsStrictlyFewerWindowsThanScalar) {
  // A KBA sweep keeps only the wavefront diagonal busy; the matrix's
  // self-exclusion lets the active shard run ahead while idle shards
  // publish +inf, so barrier rounds drop. The scalar ablation pins every
  // shard — including the global minimum's holder — to min + lookahead.
  // Both counts are deterministic, so strict inequality is a hard gate.
  net::NetworkConfig cfg;
  cfg.topology = net::TopologyKind::kDragonfly;
  cfg.routing = net::Routing::kStatic;
  cfg.nodes_hint = 64;
  cfg.long_link_latency = 1000 * kNanosecond;
  cfg.seed = 7;

  Sweep3DConfig sweep;
  sweep.pex = sweep.pey = 8;  // 64 ranks
  sweep.nx = sweep.ny = 8;
  sweep.nz = 16;
  sweep.kba = 4;

  auto run_once = [&](bool scalar) {
    cluster::Cluster cluster(cfg, nic::NicParams{}, 4);
    EXPECT_EQ(cluster.num_shards(), 4);
    if (scalar) {
      cluster.sharded_engine().set_lookahead(cluster.lookahead());
      EXPECT_FALSE(cluster.sharded_engine().lookahead_is_matrix());
    } else {
      EXPECT_TRUE(cluster.sharded_engine().lookahead_is_matrix());
    }
    RvmaTransport transport(cluster, core::RvmaParams{});
    const MotifResult result =
        MotifRunner(cluster, transport, build_sweep3d(sweep)).run();
    return std::pair<Time, std::uint64_t>(
        result.makespan, cluster.sharded_engine().windows_executed());
  };

  const auto [makespan_matrix, windows_matrix] = run_once(/*scalar=*/false);
  const auto [makespan_scalar, windows_scalar] = run_once(/*scalar=*/true);
  EXPECT_EQ(makespan_matrix, makespan_scalar);
  EXPECT_LT(windows_matrix, windows_scalar);
}

}  // namespace
}  // namespace rvma
