// The scenario layer's contracts: canonical JSON round-trips are
// byte-stable, CLI flags overlay with the right precedence, every
// registered backend materializes a minimal scenario, and the
// emit-grid -> rvma_run chain reproduces the pre-refactor figure_bench
// output byte for byte (goldens captured before the migration).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/figure_grid.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"

namespace rvma::scenario {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

ScenarioSpec full_spec() {
  ScenarioSpec spec;
  spec.name = "unit \"quoted\" name";
  spec.topology = "dragonfly";
  spec.routing = "adaptive";
  spec.nodes = 72;
  spec.link_bandwidth = Bandwidth::gbps(400);
  spec.link_latency = 150 * kNanosecond;
  spec.switch_latency = 100 * kNanosecond;
  spec.xbar_factor = 2.5;
  spec.concentration = 4;
  spec.express = false;
  spec.transport = "rdma";
  spec.rdma_slots = 4;
  spec.doorbell_batch = 3;
  spec.motif = "sweep3d";
  spec.motif_params = {{"nx", "48"}, {"compute_per_cell", "20ps"},
                       {"bytes", "64KiB"}};
  spec.seed = 0xDEADBEEFULL;
  spec.sample_period = 2 * kMicrosecond;
  spec.metrics_path = "out/metrics.json";
  spec.flight_recorder_path = "out/flight.rvfr";
  spec.flight_recorder_capacity = 4096;
  spec.pdes_profile_path = "out/pdes.json";
  return spec;
}

TEST(ScenarioSpecJson, RoundTripIsByteStable) {
  for (const ScenarioSpec& spec : {ScenarioSpec{}, full_spec()}) {
    const std::string first = to_json(spec);
    ScenarioSpec parsed;
    std::string error;
    ASSERT_TRUE(spec_from_json(first, &parsed, &error)) << error;
    EXPECT_EQ(parsed, spec);
    EXPECT_EQ(to_json(parsed), first);  // write(parse(write(s))) == write(s)
  }
}

TEST(ScenarioSpecJson, GridRoundTripIsByteStable) {
  GridSpec grid;
  grid.figure = "Figure 8";
  grid.motif_label = "Halo3D";
  grid.base = full_spec();
  grid.cases = {"torus3d-static", "hyperx-DOR"};
  grid.gbps = {100, 2000};
  const std::string first = to_json(grid);
  GridSpec parsed;
  std::string error;
  ASSERT_TRUE(grid_from_json(first, &parsed, &error)) << error;
  EXPECT_EQ(parsed, grid);
  EXPECT_EQ(to_json(parsed), first);

  EXPECT_TRUE(looks_like_grid(first));
  EXPECT_FALSE(looks_like_grid(to_json(grid.base)));
}

TEST(ScenarioSpecJson, RejectsBadDocuments) {
  ScenarioSpec spec;
  std::string error;
  EXPECT_FALSE(spec_from_json("{not json", &spec, &error));
  EXPECT_FALSE(spec_from_json("{\"format\": \"something-else\"}", &spec,
                              &error));
  EXPECT_NE(error.find("format"), std::string::npos);
  // A grid document is not a scenario document.
  GridSpec grid;
  EXPECT_FALSE(spec_from_json(to_json(grid), &spec, &error));
  // Bad unit strings fail the parse, not the simulation.
  std::string text = to_json(ScenarioSpec{});
  const std::string needle = "\"link_bandwidth\": \"100Gbps\"";
  const auto pos = text.find(needle);
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, needle.size(), "\"link_bandwidth\": \"100 knots\"");
  EXPECT_FALSE(spec_from_json(text, &spec, &error));
  EXPECT_NE(error.find("link_bandwidth"), std::string::npos);
}

TEST(ScenarioCliOverlay, FlagsWinOverFileValues) {
  ScenarioSpec spec = full_spec();
  const char* argv[] = {"prog",
                        "--nodes=16",
                        "--transport=rvma",
                        "--topology=star",
                        "--routing=static",
                        "--bandwidth=2Tbps",
                        "--link-latency=250ns",
                        "--motif.vars=8",
                        "--motif.nx=16",
                        "--seed=7",
                        "--sample-period=5us",
                        "--express",
                        "--metrics=other.json"};
  Cli cli(static_cast<int>(std::size(argv)), argv);
  std::string error;
  ASSERT_TRUE(apply_cli_overlay(cli, &spec, &error)) << error;
  EXPECT_TRUE(cli.unconsumed().empty());

  EXPECT_EQ(spec.nodes, 16);
  EXPECT_EQ(spec.transport, "rvma");
  EXPECT_EQ(spec.topology, "star");
  EXPECT_EQ(spec.routing, "static");
  EXPECT_EQ(spec.link_bandwidth, Bandwidth::tbps(2));
  EXPECT_EQ(spec.link_latency, 250 * kNanosecond);
  EXPECT_EQ(spec.seed, 7u);
  EXPECT_EQ(spec.sample_period, 5 * kMicrosecond);
  EXPECT_TRUE(spec.express);  // --express overrides the file's false
  EXPECT_EQ(spec.metrics_path, "other.json");
  // --motif.<k> merges over file params: overridden, added, untouched.
  EXPECT_EQ(spec.motif_params.at("nx"), "16");
  EXPECT_EQ(spec.motif_params.at("vars"), "8");
  EXPECT_EQ(spec.motif_params.at("bytes"), "64KiB");
  // Untouched file fields survive.
  EXPECT_EQ(spec.rdma_slots, 4);
  EXPECT_EQ(spec.motif, "sweep3d");

  // Bad unit values are rejected with the flag named.
  const char* bad[] = {"prog", "--bandwidth=fast"};
  Cli bad_cli(2, bad);
  EXPECT_FALSE(apply_cli_overlay(bad_cli, &spec, &error));
  EXPECT_NE(error.find("bandwidth"), std::string::npos);
}

TEST(ScenarioValidate, RejectsUnknownNamesAndParams) {
  ScenarioSpec spec;
  spec.nodes = 4;
  std::string error;
  ASSERT_TRUE(validate_scenario(spec, &error)) << error;

  ScenarioSpec bad_topo = spec;
  bad_topo.topology = "moebius";
  EXPECT_FALSE(validate_scenario(bad_topo, &error));
  EXPECT_NE(error.find("moebius"), std::string::npos);

  ScenarioSpec bad_transport = spec;
  bad_transport.transport = "tcp";
  EXPECT_FALSE(validate_scenario(bad_transport, &error));

  ScenarioSpec bad_motif = spec;
  bad_motif.motif = "fft";
  EXPECT_FALSE(validate_scenario(bad_motif, &error));

  // Typo'd motif params fail loudly instead of simulating defaults.
  ScenarioSpec typo = spec;
  typo.motif_params["iteraitons"] = "2";
  EXPECT_FALSE(validate_scenario(typo, &error));
  EXPECT_NE(error.find("iteraitons"), std::string::npos);

  ScenarioSpec bad_value = spec;
  bad_value.motif_params["iterations"] = "lots";
  EXPECT_FALSE(validate_scenario(bad_value, &error));
  EXPECT_NE(error.find("iterations"), std::string::npos);
}

/// Minimal motif params keeping the registry smoke fast; every registered
/// motif must have an entry here (the assert below catches new motifs).
const std::map<std::string, MotifParams>& smoke_motif_params() {
  static const std::map<std::string, MotifParams> params = {
      {"halo3d",
       {{"nx", "8"}, {"ny", "8"}, {"nz", "8"}, {"vars", "1"},
        {"iterations", "1"}}},
      {"sweep3d", {{"nx", "8"}, {"ny", "8"}, {"nz", "8"}, {"kba", "4"},
                   {"vars", "1"}}},
      {"incast", {{"messages_per_client", "2"}, {"bytes", "4KiB"}}},
      {"barrier", {{"iterations", "1"}}},
      {"allreduce", {{"bytes", "4KiB"}, {"iterations", "1"}}},
      {"broadcast", {{"bytes", "4KiB"}, {"iterations", "1"}}},
      {"remote_paging", {{"pages_per_rank", "4"}, {"faults", "4"}}},
      {"kv_store", {{"servers", "1"}, {"requests", "2"}}},
      {"alltoall", {{"bytes", "4KiB"}, {"iterations", "1"}}},
  };
  return params;
}

ScenarioSpec smoke_spec() {
  ScenarioSpec spec;
  spec.nodes = 4;
  spec.motif = "barrier";
  spec.motif_params = smoke_motif_params().at("barrier");
  return spec;
}

TEST(ScenarioRegistry, EveryTopologyMaterializes) {
  for (const auto& [name, entry] : topologies().entries()) {
    EXPECT_FALSE(entry.description.empty()) << name;
    ScenarioSpec spec = smoke_spec();
    spec.topology = name;
    ScenarioResult result;
    std::string error;
    ASSERT_TRUE(run_scenario(spec, &result, &error)) << name << ": " << error;
    EXPECT_GT(result.makespan, 0) << name;
    EXPECT_GT(result.packets_delivered, 0u) << name;
  }
}

TEST(ScenarioRegistry, EveryTransportMaterializes) {
  for (const auto& [name, entry] : transports().entries()) {
    EXPECT_FALSE(entry.description.empty()) << name;
    ScenarioSpec spec = smoke_spec();
    spec.transport = name;
    ScenarioResult result;
    std::string error;
    ASSERT_TRUE(run_scenario(spec, &result, &error)) << name << ": " << error;
    EXPECT_GT(result.makespan, 0) << name;
  }
}

TEST(ScenarioRegistry, EveryMotifMaterializes) {
  for (const auto& [name, entry] : motifs_registry().entries()) {
    EXPECT_FALSE(entry.description.empty()) << name;
    ASSERT_TRUE(smoke_motif_params().count(name))
        << "new motif \"" << name << "\": add smoke params to this test";
    ScenarioSpec spec = smoke_spec();
    spec.motif = name;
    spec.motif_params = smoke_motif_params().at(name);
    ScenarioResult result;
    std::string error;
    ASSERT_TRUE(run_scenario(spec, &result, &error)) << name << ": " << error;
    EXPECT_GT(result.makespan, 0) << name;
  }
}

TEST(ScenarioRun, SameSpecSameResult) {
  ScenarioSpec spec = smoke_spec();
  spec.motif = "halo3d";
  spec.motif_params = smoke_motif_params().at("halo3d");
  ScenarioResult a, b;
  std::string error;
  ASSERT_TRUE(run_scenario(spec, &a, &error)) << error;
  ASSERT_TRUE(run_scenario(spec, &b, &error)) << error;
  EXPECT_EQ(a, b);
}

/// Drop the wall-clock footer lines — the only nondeterministic output.
std::string filter_wall_clock(const std::string& text) {
  std::istringstream in(text);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("grid wall-clock", 0) == 0) continue;
    if (line.rfind("speedup vs serial", 0) == 0) continue;
    if (line.rfind("metrics written", 0) == 0) continue;
    out << line << '\n';
  }
  return out.str();
}

int run_cmd(const std::string& cmd) { return std::system(cmd.c_str()); }

TEST(ScenarioGolden, RvmaRunReproducesLegacyFig8MiniGrid) {
  const std::string dir = ::testing::TempDir();
  const std::string grid_path = dir + "fig8_mini_grid.json";
  const std::string table1 = dir + "fig8_mini_table1.txt";
  const std::string table4 = dir + "fig8_mini_table4.txt";
  const std::string metrics1 = dir + "fig8_mini_metrics1.json";
  const std::string metrics4 = dir + "fig8_mini_metrics4.json";

  // The bench emits the grid document; rvma_run executes it — the full
  // declarative chain must reproduce the pre-refactor bytes.
  ASSERT_EQ(run_cmd(std::string(FIG8_BIN) + " --quick --nodes=8 --emit-grid=" +
                    grid_path + " > /dev/null"),
            0);
  ASSERT_EQ(run_cmd(std::string(RVMA_RUN_BIN) + " " + grid_path +
                    " --jobs=1 --metrics=" + metrics1 + " > " + table1),
            0);
  ASSERT_EQ(run_cmd(std::string(RVMA_RUN_BIN) + " " + grid_path +
                    " --jobs=4 --metrics=" + metrics4 + " > " + table4),
            0);

  const std::string golden_table =
      read_file(std::string(GOLDEN_DIR) + "/fig8_mini_table.golden");
  const std::string golden_metrics =
      read_file(std::string(GOLDEN_DIR) + "/fig8_mini_metrics.golden.json");
  ASSERT_FALSE(golden_table.empty());
  ASSERT_FALSE(golden_metrics.empty());

  EXPECT_EQ(filter_wall_clock(read_file(table1)), golden_table);
  EXPECT_EQ(filter_wall_clock(read_file(table4)), golden_table);
  EXPECT_EQ(read_file(metrics1), golden_metrics);
  EXPECT_EQ(read_file(metrics4), golden_metrics);

  for (const std::string& p :
       {grid_path, table1, table4, metrics1, metrics4}) {
    std::remove(p.c_str());
  }
}

TEST(ScenarioGolden, RvmaRunSingleScenarioIsDeterministic) {
  const std::string dir = ::testing::TempDir();
  const std::string spec_path = dir + "smoke_spec.json";
  ScenarioSpec spec = smoke_spec();
  spec.name = "smoke";
  {
    std::ofstream out(spec_path);
    out << to_json(spec);
  }
  const std::string out_a = dir + "smoke_a.txt";
  const std::string out_b = dir + "smoke_b.txt";
  ASSERT_EQ(run_cmd(std::string(RVMA_RUN_BIN) + " " + spec_path + " > " +
                    out_a),
            0);
  ASSERT_EQ(run_cmd(std::string(RVMA_RUN_BIN) + " " + spec_path +
                    " --transport=rdma > " + out_b),
            0);
  const std::string a = read_file(out_a);
  EXPECT_NE(a.find("makespan"), std::string::npos);
  EXPECT_NE(a.find("transport rvma"), std::string::npos);
  EXPECT_NE(read_file(out_b).find("transport rdma"), std::string::npos);

  // --print round-trips the effective spec as canonical JSON.
  const std::string out_p = dir + "smoke_p.txt";
  ASSERT_EQ(run_cmd(std::string(RVMA_RUN_BIN) + " " + spec_path +
                    " --print > " + out_p),
            0);
  EXPECT_EQ(read_file(out_p), to_json(spec));

  // --list names every registered backend.
  const std::string out_l = dir + "smoke_l.txt";
  ASSERT_EQ(run_cmd(std::string(RVMA_RUN_BIN) + " --list > " + out_l), 0);
  const std::string listing = read_file(out_l);
  for (const auto& [name, entry] : topologies().entries())
    EXPECT_NE(listing.find(name), std::string::npos) << name;
  for (const auto& [name, entry] : transports().entries())
    EXPECT_NE(listing.find(name), std::string::npos) << name;
  for (const auto& [name, entry] : motifs_registry().entries())
    EXPECT_NE(listing.find(name), std::string::npos) << name;

  for (const std::string& p : {spec_path, out_a, out_b, out_p, out_l}) {
    std::remove(p.c_str());
  }
}

}  // namespace
}  // namespace rvma::scenario
