// Tests for the paper-style C API (rvma_c_api.h) over the simulated
// endpoint: the exact call sequence from §III-C.
#include <gtest/gtest.h>

#include <vector>

#include "cluster/cluster.hpp"
#include "core/endpoint.hpp"
#include "core/rvma_c_api.h"

namespace {

using rvma::core::EpochType;
using rvma::core::RvmaEndpoint;
using rvma::core::RvmaParams;

rvma::net::NetworkConfig star2() {
  rvma::net::NetworkConfig cfg;
  cfg.topology = rvma::net::TopologyKind::kStar;
  cfg.nodes_hint = 2;
  return cfg;
}

class CApiTest : public ::testing::Test {
 protected:
  CApiTest()
      : cluster_(star2(), rvma::nic::NicParams{}),
        sender_(cluster_.nic(0), RvmaParams{}),
        receiver_(cluster_.nic(1), RvmaParams{}) {}

  void TearDown() override { RVMA_Set_endpoint(nullptr); }

  rvma::cluster::Cluster cluster_;
  RvmaEndpoint sender_;
  RvmaEndpoint receiver_;
};

TEST_F(CApiTest, InitWindowRequiresEndpointAndThreshold) {
  RVMA_Set_endpoint(nullptr);
  EXPECT_EQ(RVMA_Init_window(reinterpret_cast<void*>(0x1), nullptr, 64,
                             EPOCH_BYTES),
            nullptr);
  RVMA_Set_endpoint(&receiver_);
  EXPECT_EQ(RVMA_Init_window(reinterpret_cast<void*>(0x1), nullptr, 0,
                             EPOCH_BYTES),
            nullptr);
  RVMA_Win win = RVMA_Init_window(reinterpret_cast<void*>(0x1), nullptr, 64,
                                  EPOCH_BYTES);
  ASSERT_NE(win, nullptr);
  RVMA_Win_free(win);
}

TEST_F(CApiTest, FullPaperFlow) {
  // Target: init window, post buffer with a notification cache line.
  RVMA_Set_endpoint(&receiver_);
  rvma_key_t key = 0;
  void* vaddr = reinterpret_cast<void*>(0x11FF0011u);
  RVMA_Win win = RVMA_Init_window(vaddr, &key, 64, EPOCH_BYTES);
  ASSERT_NE(win, nullptr);
  EXPECT_NE(key, 0u);

  alignas(64) void* notif_line[8] = {};  // word 0: buf ptr, word 1: length
  std::vector<unsigned char> buffer(64, 0);
  ASSERT_EQ(RVMA_Post_buffer(buffer.data(), 64, &notif_line[0], win),
            RVMA_SUCCESS);
  EXPECT_EQ(RVMA_Win_get_epoch(win), 0);

  // Initiator: put with no handshake, just node + virtual address.
  RVMA_Set_endpoint(&sender_);
  std::vector<unsigned char> payload(64, 0x7E);
  rvma_addr_in dest{1};
  ASSERT_EQ(RVMA_Put(payload.data(), 64, &dest, vaddr), RVMA_SUCCESS);
  cluster_.engine().run();

  // Completion: word 0 = buffer head, word 1 = received length.
  EXPECT_EQ(notif_line[0], buffer.data());
  EXPECT_EQ(reinterpret_cast<int64_t*>(notif_line)[1], 64);
  EXPECT_EQ(buffer[0], 0x7E);
  RVMA_Set_endpoint(&receiver_);
  EXPECT_EQ(RVMA_Win_get_epoch(win), 1);
  RVMA_Win_free(win);
}

TEST_F(CApiTest, PostBufferValidatesArguments) {
  RVMA_Set_endpoint(&receiver_);
  RVMA_Win win = RVMA_Init_window(reinterpret_cast<void*>(0x2), nullptr, 64,
                                  EPOCH_BYTES);
  ASSERT_NE(win, nullptr);
  unsigned char buf[64];
  EXPECT_EQ(RVMA_Post_buffer(nullptr, 64, nullptr, win), RVMA_ERR_INVALID);
  EXPECT_EQ(RVMA_Post_buffer(buf, 0, nullptr, win), RVMA_ERR_INVALID);
  EXPECT_EQ(RVMA_Post_buffer(buf, 64, nullptr, nullptr), RVMA_ERR_INVALID);
  EXPECT_EQ(RVMA_Post_buffer(buf, 64, nullptr, win), RVMA_SUCCESS);
  RVMA_Win_free(win);
}

TEST_F(CApiTest, CloseWindowStopsTraffic) {
  RVMA_Set_endpoint(&receiver_);
  void* vaddr = reinterpret_cast<void*>(0x3);
  RVMA_Win win = RVMA_Init_window(vaddr, nullptr, 64, EPOCH_BYTES);
  unsigned char buf[64];
  ASSERT_EQ(RVMA_Post_buffer(buf, 64, nullptr, win), RVMA_SUCCESS);
  ASSERT_EQ(RVMA_Close_Win(win), RVMA_SUCCESS);

  RVMA_Set_endpoint(&sender_);
  unsigned char payload[64] = {};
  rvma_addr_in dest{1};
  ASSERT_EQ(RVMA_Put(payload, 64, &dest, vaddr), RVMA_SUCCESS);
  cluster_.engine().run();
  EXPECT_EQ(receiver_.stats().drops_closed, 1u);
  RVMA_Win_free(win);
}

TEST_F(CApiTest, IncEpochAndGetBufPtrs) {
  RVMA_Set_endpoint(&receiver_);
  void* vaddr = reinterpret_cast<void*>(0x4);
  RVMA_Win win = RVMA_Init_window(vaddr, nullptr, 1024, EPOCH_BYTES);
  void* line_a[2] = {};
  void* line_b[2] = {};
  unsigned char buf_a[1024], buf_b[1024];
  ASSERT_EQ(RVMA_Post_buffer(buf_a, 1024, &line_a[0], win), RVMA_SUCCESS);
  ASSERT_EQ(RVMA_Post_buffer(buf_b, 1024, &line_b[0], win), RVMA_SUCCESS);

  void* ptrs[4] = {};
  EXPECT_EQ(RVMA_Win_get_buf_ptrs(win, ptrs, 4), 2);
  EXPECT_EQ(ptrs[0], static_cast<void*>(&line_a[0]));

  EXPECT_EQ(RVMA_Win_inc_epoch(win), RVMA_SUCCESS);
  cluster_.engine().run();
  EXPECT_EQ(RVMA_Win_get_epoch(win), 1);
  EXPECT_EQ(line_a[0], static_cast<void*>(buf_a));
  EXPECT_EQ(reinterpret_cast<int64_t*>(line_a)[1], 0);  // nothing arrived
  RVMA_Win_free(win);
}

TEST_F(CApiTest, RewindExtension) {
  RVMA_Set_endpoint(&receiver_);
  void* vaddr = reinterpret_cast<void*>(0x5);
  RVMA_Win win = RVMA_Init_window(vaddr, nullptr, 32, EPOCH_BYTES);
  unsigned char epoch0[32], epoch1[32];
  ASSERT_EQ(RVMA_Post_buffer(epoch0, 32, nullptr, win), RVMA_SUCCESS);
  ASSERT_EQ(RVMA_Post_buffer(epoch1, 32, nullptr, win), RVMA_SUCCESS);

  RVMA_Set_endpoint(&sender_);
  unsigned char payload[32] = {};
  rvma_addr_in dest{1};
  ASSERT_EQ(RVMA_Put(payload, 32, &dest, vaddr), RVMA_SUCCESS);
  ASSERT_EQ(RVMA_Put(payload, 32, &dest, vaddr), RVMA_SUCCESS);
  cluster_.engine().run();

  void* old_buf = nullptr;
  int64_t old_len = 0;
  EXPECT_EQ(RVMA_Win_rewind(win, 1, &old_buf, &old_len), RVMA_SUCCESS);
  EXPECT_EQ(old_buf, static_cast<void*>(epoch1));
  EXPECT_EQ(old_len, 32);
  EXPECT_EQ(RVMA_Win_rewind(win, 2, &old_buf, &old_len), RVMA_SUCCESS);
  EXPECT_EQ(old_buf, static_cast<void*>(epoch0));
  RVMA_Win_free(win);
}

TEST_F(CApiTest, GetFetchesIntoReplyMailbox) {
  // Target side: a window holding data.
  RVMA_Set_endpoint(&receiver_);
  void* data_vaddr = reinterpret_cast<void*>(0x70);
  RVMA_Win data_win = RVMA_Init_window(data_vaddr, nullptr, 1 << 20,
                                       EPOCH_BYTES);
  unsigned char remote[256];
  for (int i = 0; i < 256; ++i) remote[i] = static_cast<unsigned char>(i);
  ASSERT_EQ(RVMA_Post_buffer(remote, 256, nullptr, data_win), RVMA_SUCCESS);

  // Requester side: reply mailbox, then the get.
  RVMA_Set_endpoint(&sender_);
  void* reply_vaddr = reinterpret_cast<void*>(0x71);
  RVMA_Win reply_win = RVMA_Init_window(reply_vaddr, nullptr, 64, EPOCH_BYTES);
  unsigned char reply[64] = {};
  void* line[2] = {};
  ASSERT_EQ(RVMA_Post_buffer(reply, 64, &line[0], reply_win), RVMA_SUCCESS);

  rvma_addr_in src{1};
  ASSERT_EQ(RVMA_Get(64, 100, &src, data_vaddr, reply_vaddr), RVMA_SUCCESS);
  cluster_.engine().run();
  EXPECT_EQ(line[0], static_cast<void*>(reply));
  EXPECT_EQ(reply[0], 100);
  EXPECT_EQ(reply[63], 163);
  RVMA_Win_free(data_win);
  RVMA_Win_free(reply_win);
}

TEST_F(CApiTest, CatchAllReceivesStrays) {
  RVMA_Set_endpoint(&receiver_);
  RVMA_Win catch_all = RVMA_Init_catch_all(32, EPOCH_BYTES);
  ASSERT_NE(catch_all, nullptr);
  unsigned char bucket[4096] = {};
  ASSERT_EQ(RVMA_Post_buffer(bucket, 4096, nullptr, catch_all), RVMA_SUCCESS);

  RVMA_Set_endpoint(&sender_);
  unsigned char payload[32];
  std::fill(payload, payload + 32, 0xEE);
  rvma_addr_in dest{1};
  ASSERT_EQ(RVMA_Put(payload, 32, &dest,
                     reinterpret_cast<void*>(0xDEADBEEF)),
            RVMA_SUCCESS);
  cluster_.engine().run();
  EXPECT_EQ(bucket[0], 0xEE);
  EXPECT_EQ(receiver_.stats().catch_all_packets, 1u);
  RVMA_Win_free(catch_all);
}

TEST_F(CApiTest, PutOffsetAssembles) {
  RVMA_Set_endpoint(&receiver_);
  void* vaddr = reinterpret_cast<void*>(0x6);
  RVMA_Win win = RVMA_Init_window(vaddr, nullptr, 64, EPOCH_BYTES);
  unsigned char buf[64] = {};
  ASSERT_EQ(RVMA_Post_buffer(buf, 64, nullptr, win), RVMA_SUCCESS);

  RVMA_Set_endpoint(&sender_);
  unsigned char lo[32], hi[32];
  std::fill(lo, lo + 32, 0x10);
  std::fill(hi, hi + 32, 0x20);
  rvma_addr_in dest{1};
  ASSERT_EQ(RVMA_Put_offset(lo, 32, 0, &dest, vaddr), RVMA_SUCCESS);
  ASSERT_EQ(RVMA_Put_offset(hi, 32, 32, &dest, vaddr), RVMA_SUCCESS);
  cluster_.engine().run();
  EXPECT_EQ(buf[0], 0x10);
  EXPECT_EQ(buf[63], 0x20);
}

}  // namespace
