// RDMA baseline model tests: registration, handshake, put data path,
// completion mechanisms (last-byte poll vs. trailing send/recv), the
// premature-completion corruption under adaptive routing, write-with-
// immediate limits, and get.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "cluster/cluster.hpp"
#include "rdma/rdma.hpp"

namespace rvma::rdma {
namespace {

net::NetworkConfig star2() {
  net::NetworkConfig cfg;
  cfg.topology = net::TopologyKind::kStar;
  cfg.nodes_hint = 2;
  cfg.link.bw = Bandwidth::gbps(100);
  cfg.link.latency = 100 * kNanosecond;
  cfg.switch_latency = 100 * kNanosecond;
  return cfg;
}

class RdmaTest : public ::testing::Test {
 protected:
  RdmaTest()
      : cluster_(star2(), nic::NicParams{}),
        initiator_(cluster_.nic(0), RdmaParams{}),
        target_(cluster_.nic(1), RdmaParams{}) {}

  cluster::Cluster cluster_;
  RdmaEndpoint initiator_;
  RdmaEndpoint target_;
};

TEST_F(RdmaTest, RegistrationChargesCost) {
  Time done_at = 0;
  cluster_.engine().schedule(0, [&] {
    target_.register_region({}, 1 * MiB,
                            [&](std::uint64_t) { done_at = cluster_.engine().now(); });
  });
  cluster_.engine().run();
  const RdmaParams& p = target_.params();
  const Time expected = p.reg_base + ns(p.reg_ns_per_kib * 1024.0);
  EXPECT_EQ(done_at, expected);
  EXPECT_EQ(target_.stats().regions_registered, 1u);
}

TEST_F(RdmaTest, HandshakeReturnsAddressAndLength) {
  target_.serve_buffer_requests(
      [](std::uint64_t, std::uint64_t) { return std::span<std::byte>{}; });
  RemoteBuffer got;
  cluster_.engine().schedule(0, [&] {
    initiator_.request_buffer(1, 64 * KiB, [&](RemoteBuffer rb) { got = rb; });
  });
  cluster_.engine().run();
  EXPECT_EQ(got.node, 1);
  EXPECT_EQ(got.size, 64u * KiB);
  EXPECT_NE(got.addr, 0u);
  EXPECT_EQ(target_.stats().handshakes_served, 1u);
}

TEST_F(RdmaTest, HandshakeTagReachesAllocatorAndObserver) {
  std::uint64_t seen_tag = 0, observed_tag = 0, observed_addr = 0;
  target_.serve_buffer_requests(
      [&](std::uint64_t, std::uint64_t tag) {
        seen_tag = tag;
        return std::span<std::byte>{};
      },
      [&](std::uint64_t tag, std::uint64_t addr, std::uint64_t) {
        observed_tag = tag;
        observed_addr = addr;
      });
  RemoteBuffer got;
  cluster_.engine().schedule(0, [&] {
    initiator_.request_buffer(1, 4096, [&](RemoteBuffer rb) { got = rb; }, 77);
  });
  cluster_.engine().run();
  EXPECT_EQ(seen_tag, 77u);
  EXPECT_EQ(observed_tag, 77u);
  EXPECT_EQ(observed_addr, got.addr);
}

TEST_F(RdmaTest, PutMovesRealBytes) {
  std::vector<std::byte> target_mem(8192, std::byte{0});
  std::uint64_t addr = 0;
  cluster_.engine().schedule(0, [&] {
    target_.register_region(target_mem, 0, [&](std::uint64_t a) { addr = a; });
  });
  cluster_.engine().run();

  std::vector<std::byte> src(5000);
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<std::byte>((i * 7) & 0xff);
  }
  bool done = false;
  cluster_.engine().schedule(0, [&] {
    initiator_.put(RemoteBuffer{1, addr, 8192}, 1024, src.data(), src.size(),
                   [&] { done = true; });
  });
  cluster_.engine().run();
  EXPECT_TRUE(done);
  EXPECT_EQ(std::memcmp(target_mem.data() + 1024, src.data(), src.size()), 0);
  EXPECT_EQ(target_.region_bytes_received(addr), src.size());
  EXPECT_EQ(target_.stats().puts_received, 1u);
}

TEST_F(RdmaTest, PutLocalCompletionNeedsAckRoundTrip) {
  std::uint64_t addr = 0;
  cluster_.engine().schedule(0, [&] {
    target_.register_region({}, 4096, [&](std::uint64_t a) { addr = a; });
  });
  cluster_.engine().run();

  Time done_at = 0;
  const Time start = cluster_.engine().now();
  cluster_.engine().schedule(0, [&] {
    initiator_.put(RemoteBuffer{1, addr, 4096}, 0, nullptr, 4096,
                   [&] { done_at = cluster_.engine().now(); });
  });
  cluster_.engine().run();
  // Must include forward data time plus the return ack: strictly greater
  // than two one-way link latencies + CQ poll.
  EXPECT_GT(done_at - start,
            4 * (100 * kNanosecond) + target_.params().cq_poll);
  EXPECT_EQ(initiator_.stats().put_acks, 1u);  // ack observed at initiator
  EXPECT_EQ(target_.stats().puts_received, 1u);
}

TEST_F(RdmaTest, LastBytePollFiresCompleteUnderInOrderDelivery) {
  std::uint64_t addr = 0;
  cluster_.engine().schedule(0, [&] {
    target_.register_region({}, 64 * KiB, [&](std::uint64_t a) { addr = a; });
  });
  cluster_.engine().run();

  std::uint64_t seen_bytes = 0;
  Time fired_at = 0;
  cluster_.engine().schedule(0, [&] {
    target_.arm_last_byte_poll(addr, 64 * KiB, [&](Time, std::uint64_t seen) {
      seen_bytes = seen;
      fired_at = cluster_.engine().now();
    });
    initiator_.put(RemoteBuffer{1, addr, 64 * KiB}, 0, nullptr, 64 * KiB, {});
  });
  cluster_.engine().run();
  EXPECT_EQ(seen_bytes, 64u * KiB);  // star topology: in-order, no corruption
  EXPECT_GT(fired_at, 0u);
  EXPECT_EQ(target_.stats().premature_flag_fires, 0u);
}

TEST_F(RdmaTest, SendRecvThroughCq) {
  Completion entry;
  bool got = false;
  cluster_.engine().schedule(0, [&] {
    target_.post_recv([&](const Completion& c) {
      entry = c;
      got = true;
    });
    initiator_.send(1, 0xdead);
  });
  cluster_.engine().run();
  ASSERT_TRUE(got);
  EXPECT_EQ(entry.peer, 0);
  EXPECT_EQ(entry.imm, 0xdeadu);
  EXPECT_EQ(target_.stats().sends_received, 1u);
}

TEST_F(RdmaTest, CqBuffersEntriesUntilPolled) {
  cluster_.engine().schedule(0, [&] {
    initiator_.send(1, 1);
    initiator_.send(1, 2);
  });
  cluster_.engine().run();  // both arrive, nobody polling

  std::vector<std::uint64_t> imms;
  cluster_.engine().schedule(0, [&] {
    target_.post_recv([&](const Completion& c) { imms.push_back(c.imm); });
    target_.post_recv([&](const Completion& c) { imms.push_back(c.imm); });
  });
  cluster_.engine().run();
  EXPECT_EQ(imms, (std::vector<std::uint64_t>{1, 2}));  // FIFO
}

TEST_F(RdmaTest, WriteImmRespectsPayloadLimit) {
  std::uint64_t addr = 0;
  cluster_.engine().schedule(0, [&] {
    target_.register_region({}, 4096, [&](std::uint64_t a) { addr = a; });
  });
  cluster_.engine().run();
  const RemoteBuffer rb{1, addr, 4096};
  EXPECT_EQ(initiator_.write_with_imm(rb, 0, nullptr, 65, 9),
            Status::kInvalidArg);  // paper: payloads typically < 64 B
  EXPECT_EQ(initiator_.write_with_imm(rb, 4090, nullptr, 32, 9),
            Status::kOverflow);
  EXPECT_EQ(initiator_.write_with_imm(rb, 0, nullptr, 32, 9), Status::kOk);

  Completion entry;
  cluster_.engine().schedule(0, [&] {
    target_.post_recv([&](const Completion& c) { entry = c; });
  });
  cluster_.engine().run();
  EXPECT_EQ(entry.imm, 9u);
}

TEST_F(RdmaTest, GetFetchesRemoteData) {
  std::vector<std::byte> target_mem(4096);
  for (std::size_t i = 0; i < target_mem.size(); ++i) {
    target_mem[i] = static_cast<std::byte>(i & 0xff);
  }
  std::uint64_t addr = 0;
  cluster_.engine().schedule(0, [&] {
    target_.register_region(target_mem, 0, [&](std::uint64_t a) { addr = a; });
  });
  cluster_.engine().run();

  std::vector<std::byte> local(1024, std::byte{0});
  bool done = false;
  cluster_.engine().schedule(0, [&] {
    initiator_.get(RemoteBuffer{1, addr, 4096}, 512, local.data(), 1024,
                   [&] { done = true; });
  });
  cluster_.engine().run();
  ASSERT_TRUE(done);
  EXPECT_EQ(std::memcmp(local.data(), target_mem.data() + 512, 1024), 0);
}

TEST_F(RdmaTest, MultipleConcurrentHandshakes) {
  target_.serve_buffer_requests(
      [](std::uint64_t, std::uint64_t) { return std::span<std::byte>{}; });
  std::vector<RemoteBuffer> bufs;
  cluster_.engine().schedule(0, [&] {
    for (int i = 0; i < 4; ++i) {
      initiator_.request_buffer(1, 4096 * (i + 1),
                                [&](RemoteBuffer rb) { bufs.push_back(rb); });
    }
  });
  cluster_.engine().run();
  ASSERT_EQ(bufs.size(), 4u);
  // Distinct regions.
  for (std::size_t i = 1; i < bufs.size(); ++i) {
    EXPECT_NE(bufs[i].addr, bufs[i - 1].addr);
  }
}

// Premature last-byte completion under adaptive routing: the corruption
// scenario from paper §II / §V-A1. Uses the HyperX disjoint-path setup to
// force the watched final packet ahead of earlier payload packets.
TEST(RdmaAdaptive, LastBytePollFiresPrematurely) {
  net::NetworkConfig cfg;
  cfg.topology = net::TopologyKind::kHyperX;
  cfg.routing = net::Routing::kAdaptive;
  cfg.hx_l1 = 4;
  cfg.hx_l2 = 4;
  cfg.link.bw = Bandwidth::gbps(100);
  cfg.link.latency = 50 * kNanosecond;
  cfg.switch_latency = 50 * kNanosecond;
  cfg.seed = 5;
  nic::NicParams nic_params;
  nic_params.mtu = 1024;
  cluster::Cluster cluster(cfg, nic_params);

  RdmaEndpoint initiator(cluster.nic(0), RdmaParams{});
  RdmaEndpoint target(cluster.nic(15), RdmaParams{});
  RdmaEndpoint cross_src(cluster.nic(3), RdmaParams{});

  std::uint64_t addr = 0, cross_addr = 0;
  cluster.engine().schedule(0, [&] {
    target.register_region({}, 64 * KiB, [&](std::uint64_t a) { addr = a; });
    target.register_region({}, 1 * MiB,
                           [&](std::uint64_t a) { cross_addr = a; });
  });
  cluster.engine().run();

  // The watched transfer's packets alternate between the two disjoint
  // corner-to-corner paths ((0,0)->(3,0)->(3,3) and (0,0)->(0,3)->(3,3)).
  // Cross traffic 3 -> 15 is forced onto (0,3)->(3,3), stalling the odd
  // (dim1-first) packets. 31 packets make the flag-carrying final packet
  // even-parity, i.e. on the fast path — it lands while odd packets are
  // still queued, firing the poll prematurely.
  const std::uint64_t watched_bytes = 31 * 1024;
  std::uint64_t seen = 0;
  bool fired = false;
  cluster.engine().schedule(0, [&] {
    cross_src.put(RemoteBuffer{15, cross_addr, 1 * MiB}, 0, nullptr, 160 * KiB,
                  {});
    target.arm_last_byte_poll(addr, watched_bytes,
                              [&](Time, std::uint64_t s) {
                                seen = s;
                                fired = true;
                              });
    initiator.put(RemoteBuffer{15, addr, 64 * KiB}, 0, nullptr, watched_bytes,
                  {});
  });
  cluster.engine().run();
  ASSERT_TRUE(fired);
  // The flag byte arrived before all payload: premature completion.
  EXPECT_LT(seen, watched_bytes);
  EXPECT_GE(target.stats().premature_flag_fires, 1u);
}

}  // namespace
}  // namespace rvma::rdma
