// NID/PID addressing tests (paper §III-C: "Physical and/or logical
// addresses may include a network ID (NID) and process ID (PID) pair, if
// remote process space targeting is desirable"): multiple endpoints —
// processes — share one NIC and traffic steers by pid.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "cluster/cluster.hpp"
#include "core/endpoint.hpp"
#include "rdma/rdma.hpp"

namespace rvma {
namespace {

using core::EpochType;
using core::RvmaEndpoint;
using core::RvmaParams;

net::NetworkConfig star2() {
  net::NetworkConfig cfg;
  cfg.topology = net::TopologyKind::kStar;
  cfg.nodes_hint = 2;
  return cfg;
}

TEST(PidAddressing, TwoRvmaProcessesShareOneNic) {
  cluster::Cluster cluster(star2(), nic::NicParams{});
  RvmaEndpoint sender(cluster.nic(0), RvmaParams{});
  RvmaEndpoint proc_a(cluster.nic(1), RvmaParams{}, /*pid=*/1);
  RvmaEndpoint proc_b(cluster.nic(1), RvmaParams{}, /*pid=*/2);
  EXPECT_EQ(proc_a.pid(), 1);
  EXPECT_EQ(proc_b.pid(), 2);

  // Same mailbox vaddr in both processes: pid disambiguates.
  std::vector<std::byte> buf_a(64, std::byte{0}), buf_b(64, std::byte{0});
  proc_a.init_window(0x1, 64, EpochType::kBytes);
  proc_b.init_window(0x1, 64, EpochType::kBytes);
  ASSERT_EQ(proc_a.post_buffer(0x1, buf_a, nullptr, nullptr), Status::kOk);
  ASSERT_EQ(proc_b.post_buffer(0x1, buf_b, nullptr, nullptr), Status::kOk);

  std::vector<std::byte> to_a(64, std::byte{0xA1});
  std::vector<std::byte> to_b(64, std::byte{0xB2});
  sender.put(1, 0x1, 0, to_a.data(), 64, {}, 0, /*dst_pid=*/1);
  sender.put(1, 0x1, 0, to_b.data(), 64, {}, 0, /*dst_pid=*/2);
  cluster.engine().run();

  EXPECT_EQ(buf_a[0], std::byte{0xA1});
  EXPECT_EQ(buf_b[0], std::byte{0xB2});
  EXPECT_EQ(proc_a.completions(0x1), 1u);
  EXPECT_EQ(proc_b.completions(0x1), 1u);
}

TEST(PidAddressing, NackRoutesBackToOriginProcess) {
  cluster::Cluster cluster(star2(), nic::NicParams{});
  RvmaEndpoint proc_x(cluster.nic(0), RvmaParams{}, /*pid=*/5);
  RvmaEndpoint proc_y(cluster.nic(0), RvmaParams{}, /*pid=*/6);
  RvmaEndpoint target(cluster.nic(1), RvmaParams{});

  int x_nacks = 0, y_nacks = 0;
  proc_x.on_nack([&](std::uint64_t, Status) { ++x_nacks; });
  proc_y.on_nack([&](std::uint64_t, Status) { ++y_nacks; });
  proc_x.put(1, 0xDEAD, 0, nullptr, 8);  // no such mailbox -> NACK
  cluster.engine().run();
  EXPECT_EQ(x_nacks, 1);
  EXPECT_EQ(y_nacks, 0);  // the co-located process must not see it
}

TEST(PidAddressing, GetRepliesToRequestingProcess) {
  cluster::Cluster cluster(star2(), nic::NicParams{});
  RvmaEndpoint requester(cluster.nic(0), RvmaParams{}, /*pid=*/3);
  RvmaEndpoint other(cluster.nic(0), RvmaParams{}, /*pid=*/4);
  RvmaEndpoint target(cluster.nic(1), RvmaParams{}, /*pid=*/7);

  std::vector<std::byte> remote(128, std::byte{0x77});
  target.init_window(0x10, 1 << 20, EpochType::kBytes);
  ASSERT_EQ(target.post_buffer(0x10, remote, nullptr, nullptr), Status::kOk);

  std::vector<std::byte> reply(128, std::byte{0});
  requester.init_window(0x20, 128, EpochType::kBytes);
  other.init_window(0x20, 128, EpochType::kBytes);  // decoy, no buffer
  ASSERT_EQ(requester.post_buffer(0x20, reply, nullptr, nullptr), Status::kOk);

  requester.get(1, 0x10, 0, 128, 0x20, /*dst_pid=*/7);
  cluster.engine().run();
  EXPECT_EQ(reply[0], std::byte{0x77});
  EXPECT_EQ(requester.completions(0x20), 1u);
  EXPECT_EQ(other.completions(0x20), 0u);
}

TEST(PidAddressing, RdmaHandshakeCarriesPid) {
  cluster::Cluster cluster(star2(), nic::NicParams{});
  rdma::RdmaEndpoint initiator(cluster.nic(0), rdma::RdmaParams{}, /*pid=*/9);
  rdma::RdmaEndpoint server(cluster.nic(1), rdma::RdmaParams{}, /*pid=*/11);
  server.serve_buffer_requests(
      [](std::uint64_t, std::uint64_t) { return std::span<std::byte>{}; });

  rdma::RemoteBuffer rb;
  cluster.engine().schedule(0, [&] {
    initiator.request_buffer(
        1, 4096, [&](rdma::RemoteBuffer b) { rb = b; }, 0, /*target_pid=*/11);
  });
  cluster.engine().run();
  EXPECT_EQ(rb.pid, 11);  // the region's owning process

  // Put targets the region owner's process; ack returns to pid 9.
  bool done = false;
  cluster.engine().schedule(0, [&] {
    initiator.put(rb, 0, nullptr, 4096, [&] { done = true; });
  });
  cluster.engine().run();
  EXPECT_TRUE(done);
  EXPECT_EQ(server.stats().puts_received, 1u);
}

TEST(PidAddressing, RvmaAndRdmaProcessesAllCoexist) {
  cluster::Cluster cluster(star2(), nic::NicParams{});
  // Four endpoints on node 1: two protocols x two processes.
  RvmaEndpoint rvma_p0(cluster.nic(1), RvmaParams{}, 0);
  RvmaEndpoint rvma_p1(cluster.nic(1), RvmaParams{}, 1);
  rdma::RdmaEndpoint rdma_p0(cluster.nic(1), rdma::RdmaParams{}, 0);
  rdma::RdmaEndpoint rdma_p1(cluster.nic(1), rdma::RdmaParams{}, 1);

  RvmaEndpoint rvma_src(cluster.nic(0), RvmaParams{});
  rvma_p0.init_window(0x1, 8, EpochType::kBytes);
  rvma_p1.init_window(0x1, 8, EpochType::kBytes);
  rvma_p0.post_buffer_timing_only(0x1, 8);
  rvma_p1.post_buffer_timing_only(0x1, 8);
  rvma_src.put(1, 0x1, 0, nullptr, 8, {}, 0, 0);
  rvma_src.put(1, 0x1, 0, nullptr, 8, {}, 0, 1);
  cluster.engine().run();
  EXPECT_EQ(rvma_p0.completions(0x1), 1u);
  EXPECT_EQ(rvma_p1.completions(0x1), 1u);
}

}  // namespace
}  // namespace rvma
