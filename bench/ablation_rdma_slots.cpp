// Ablation: RDMA credit-pipeline depth (registered slots per channel).
//
// The motif RDMA baseline lets a channel hold `slots` registered buffers;
// the receiver may only have that many credits outstanding, so senders
// bursting on one channel stall when the pipeline is shallow. This sweeps
// slots on an incast burst to show the RVMA advantage in Figures 7-8 is
// not an artifact of a strawman depth-1 baseline: deeper RDMA pipelines
// spend more registered memory to reduce stalls, but the per-message
// completion/credit traffic — what RVMA eliminates — remains.
#include <cstdio>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "exec/sweep_executor.hpp"
#include "motifs/incast.hpp"
#include "motifs/rdma_transport.hpp"
#include "motifs/runner.hpp"
#include "motifs/rvma_transport.hpp"

using namespace rvma;
using namespace rvma::motifs;

namespace {

net::NetworkConfig fattree(int nodes) {
  net::NetworkConfig cfg;
  cfg.topology = net::TopologyKind::kFatTree;
  cfg.routing = net::Routing::kAdaptive;
  cfg.nodes_hint = nodes;
  cfg.link.bw = Bandwidth::gbps(400);
  cfg.seed = 7;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  IncastConfig cfg;
  cfg.clients = static_cast<int>(cli.get_int("clients", 15));
  cfg.messages_per_client = static_cast<int>(cli.get_int("messages", 16));
  cfg.bytes = cli.get_int("bytes", 16 * KiB);
  cfg.client_compute = 200 * kNanosecond;
  const int jobs = static_cast<int>(cli.get_int("jobs", 0));
  for (const auto& key : cli.unconsumed()) {
    std::fprintf(stderr, "unknown option --%s\n", key.c_str());
    return 2;
  }

  std::printf("Ablation: RDMA slots (credit pipeline depth), incast burst "
              "(%d clients x %d msgs of %llu B) on adaptive fat-tree @ "
              "400 Gbps\n\n",
              cfg.clients, cfg.messages_per_client,
              static_cast<unsigned long long>(cfg.bytes));

  // Job 0 is the RVMA reference, jobs 1..N the RDMA depth sweep — all
  // independent clusters, so they fan out over the sweep executor.
  const std::vector<int> slot_depths = {1, 2, 4, 8, 16};
  const auto results = exec::sweep_map<MotifResult>(
      jobs, slot_depths.size() + 1, [&](std::size_t i) {
        cluster::Cluster cluster(fattree(cfg.ranks()), nic::NicParams{});
        if (i == 0) {
          RvmaTransport transport(cluster, core::RvmaParams{});
          return MotifRunner(cluster, transport, build_incast(cfg)).run();
        }
        RdmaTransport transport(cluster, rdma::RdmaParams{},
                                /*ordered_network=*/false,
                                slot_depths[i - 1]);
        return MotifRunner(cluster, transport, build_incast(cfg)).run();
      });
  const Time rvma_time = results[0].makespan;

  Table table({"rdma slots", "time us", "credit stalls", "ctrl msgs",
               "rvma speedup"});
  for (std::size_t i = 0; i < slot_depths.size(); ++i) {
    const MotifResult& result = results[i + 1];
    table.add_row(
        {std::to_string(slot_depths[i]),
         Table::num(to_us(result.makespan), 1),
         std::to_string(result.transport.credit_stalls),
         std::to_string(result.transport.control_messages),
         Table::num(static_cast<double>(result.makespan) /
                        static_cast<double>(rvma_time),
                    2) +
             "x"});
  }
  table.print();
  std::printf("\nRVMA time: %.1f us with 0 control messages and 0 stalls\n"
              "(one mailbox, receiver-managed bucket).\n",
              to_us(rvma_time));
  return 0;
}
