// Extension: effective bandwidth vs message size for the three completion
// schemes — the classic companion to the Figure 4/5 latency curves. RVMA's
// cheap completion lets it reach the bandwidth asymptote at smaller
// message sizes than the spec-compliant adaptive RDMA scheme.
#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "perf/validation.hpp"

using namespace rvma;
using namespace rvma::perf;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::string which = cli.get("profile", "verbs-opa");
  for (const auto& key : cli.unconsumed()) {
    std::fprintf(stderr, "unknown option --%s\n", key.c_str());
    return 2;
  }
  const SystemProfile profile =
      which == "ucx-cx5" ? ucx_cx5() : verbs_opa();

  std::printf("Extension: effective bandwidth (payload bits over one-way "
              "completion latency), %s, line rate %s\n\n",
              profile.name.c_str(),
              format_bandwidth(profile.link.bw).c_str());

  Table table({"size", "rdma-static Gbps", "rdma-adaptive Gbps", "rvma Gbps",
               "rvma % of line"});
  double half_line_at = 0.0;
  for (int exp = 8; exp <= 26; exp += 2) {
    const std::uint64_t bytes = 1ULL << exp;
    const double s = effective_bandwidth_gbps(profile, Mode::kRdmaStatic, bytes);
    const double a =
        effective_bandwidth_gbps(profile, Mode::kRdmaAdaptive, bytes);
    const double r = effective_bandwidth_gbps(profile, Mode::kRvma, bytes);
    if (half_line_at == 0.0 && r >= profile.link.bw.gbps_value() / 2) {
      half_line_at = static_cast<double>(bytes);
    }
    table.add_row({format_size(bytes), Table::num(s, 1), Table::num(a, 1),
                   Table::num(r, 1),
                   Table::num(r / profile.link.bw.gbps_value() * 100.0, 1) +
                       "%"});
  }
  table.print();
  std::printf("\nRVMA reaches half line rate at %s (N/2 message size).\n",
              format_size(static_cast<std::uint64_t>(half_line_at)).c_str());
  return 0;
}
