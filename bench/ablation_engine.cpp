// google-benchmark microbenchmark: discrete-event engine throughput.
//
// Everything in the reproduction is built on the event engine; this keeps
// its costs visible (events/sec drives how large a cluster the motif
// benches can simulate per wall-second).
#include <benchmark/benchmark.h>

#include <functional>

#include "sim/engine.hpp"

using rvma::sim::Engine;

namespace {

void BM_ScheduleRunChain(benchmark::State& state) {
  // A serial chain of N events (the pattern of a packet hopping switches).
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Engine engine;
    int depth = 0;
    std::function<void()> hop = [&] {
      if (++depth < n) engine.schedule(100, hop);
    };
    engine.schedule(0, hop);
    engine.run();
    benchmark::DoNotOptimize(depth);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ScheduleRunChain)->Arg(1000)->Arg(100000);

void BM_ScheduleRunFanout(benchmark::State& state) {
  // N independent events at random-ish times (heap stress).
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Engine engine;
    std::uint64_t sink = 0;
    for (int i = 0; i < n; ++i) {
      engine.schedule_at(static_cast<rvma::Time>((i * 2654435761u) % 1000000),
                         [&sink] { ++sink; });
    }
    engine.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ScheduleRunFanout)->Arg(1000)->Arg(100000);

void BM_EmptyEventOverhead(benchmark::State& state) {
  Engine engine;
  for (auto _ : state) {
    engine.schedule(1, [] {});
    engine.step();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EmptyEventOverhead);

}  // namespace

BENCHMARK_MAIN();
