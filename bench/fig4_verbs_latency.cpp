// Figure 4 — RVMA vs. RDMA latency, Verbs interface.
//
// Paper setup: OFED perftest modified to add a 1-byte send/recv after the
// RDMA put (the InfiniBand-spec-compliant completion for adaptively routed
// networks), Intel OmniPath 100 Gbps + Skylake, 10 runs x 1000 iterations.
// Paper headline: up to 65.8% latency reduction for RVMA.
#include "latency_table.hpp"

int main(int argc, char** argv) {
  return rvma::perf::run_latency_figure(rvma::perf::verbs_opa(),
                                        "Figure 4 (Verbs)", argc, argv);
}
