// Ablation: ordering (in)sensitivity of the two completion mechanisms.
//
// The paper's §IV-D argument: RDMA's last-byte polling needs byte-level
// write ordering, so it corrupts under adaptive routing; RVMA's counted
// completion is placement-order-independent. This bench drives the same
// multi-packet transfer over static and adaptive routing with heavy cross
// traffic and reports (a) how often last-byte polling fired prematurely
// and (b) RVMA's completion correctness, plus completion latencies.
#include <cstdio>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/cli.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/endpoint.hpp"
#include "exec/sweep_executor.hpp"
#include "rdma/rdma.hpp"

using namespace rvma;

namespace {

net::NetworkConfig hyperx(net::Routing routing, std::uint64_t seed) {
  net::NetworkConfig cfg;
  cfg.topology = net::TopologyKind::kHyperX;
  cfg.routing = routing;
  cfg.hx_l1 = 4;
  cfg.hx_l2 = 4;
  cfg.seed = seed;
  return cfg;
}

struct TrialResult {
  bool premature = false;   // last-byte fired before all payload landed
  bool rvma_complete = false;  // RVMA completion saw the full byte count
  double rdma_lat_us = 0;
  double rvma_lat_us = 0;
};

/// One independent trial (own cluster, seeded by trial index) — the unit
/// the sweep executor fans out.
TrialResult run_one_trial(net::Routing routing, int t,
                          std::uint64_t msg_bytes) {
  TrialResult out;
  {
    nic::NicParams nic_params;
    nic_params.mtu = 1024;
    cluster::Cluster cluster(hyperx(routing, 100 + t), nic_params);
    rdma::RdmaEndpoint rdma_src(cluster.nic(0), rdma::RdmaParams{});
    rdma::RdmaEndpoint rdma_dst(cluster.nic(15), rdma::RdmaParams{});
    core::RvmaEndpoint rvma_src(cluster.nic(1), core::RvmaParams{});
    core::RvmaEndpoint rvma_dst(cluster.nic(14), core::RvmaParams{});
    rdma::RdmaEndpoint cross_a(cluster.nic(3), rdma::RdmaParams{});

    std::uint64_t region = 0, cross_region = 0;
    cluster.engine().schedule(0, [&] {
      rdma_dst.register_region({}, msg_bytes,
                               [&](std::uint64_t a) { region = a; });
      // Cross region on the same destination corner: traffic 3 -> 15 is
      // forced onto the watched flow's dim1-first second hop, so the two
      // disjoint minimal paths diverge wildly in latency.
      rdma_dst.register_region({}, 4 * MiB,
                               [&](std::uint64_t a) { cross_region = a; });
    });
    cluster.engine().run();

    rvma_dst.init_window(0x1, static_cast<std::int64_t>(msg_bytes),
                         core::EpochType::kBytes);
    rvma_dst.post_buffer_timing_only(0x1, msg_bytes);

    Time start = 0;
    cluster.engine().schedule(0, [&] {
      start = cluster.engine().now();
      // Cross traffic to perturb path choices.
      cross_a.put(rdma::RemoteBuffer{15, cross_region, 4 * MiB}, 0, nullptr,
                  (256 + 32 * t) * KiB, {});
      rdma_dst.arm_last_byte_poll(region, msg_bytes,
                                  [&](Time t_fire, std::uint64_t seen) {
                                    out.premature = seen < msg_bytes;
                                    out.rdma_lat_us = to_us(t_fire - start);
                                  });
      rdma_src.put(rdma::RemoteBuffer{15, region, msg_bytes}, 0, nullptr,
                   msg_bytes, {});
      rvma_src.put(14, 0x1, 0, nullptr, msg_bytes);
    });
    rvma_dst.set_completion_observer(0x1, [&](void*, std::int64_t len) {
      out.rvma_complete = len == static_cast<std::int64_t>(msg_bytes);
      out.rvma_lat_us = to_us(cluster.engine().now() - start);
    });
    cluster.engine().run();
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int trials = static_cast<int>(cli.get_int("trials", 20));
  // 31 packets: an odd count, so the flag-carrying final packet rides the
  // less-congested of the two disjoint paths under adaptive routing.
  const std::uint64_t bytes = cli.get_int("bytes", 31 * 1024);
  const int jobs = static_cast<int>(cli.get_int("jobs", 0));
  for (const auto& key : cli.unconsumed()) {
    std::fprintf(stderr, "unknown option --%s\n", key.c_str());
    return 2;
  }

  std::printf("Ablation: completion correctness vs packet ordering\n");
  std::printf("%llu-byte transfers on 4x4 HyperX with cross traffic, %d "
              "trials per routing\n\n",
              static_cast<unsigned long long>(bytes), trials);

  // Every (routing, trial) pair is an independent cluster with a
  // deterministic per-trial seed — fan them all out, then aggregate in
  // trial order so the reported means are bit-identical at any job count.
  const net::Routing routings[] = {net::Routing::kStatic,
                                   net::Routing::kAdaptive};
  const auto results = exec::sweep_map<TrialResult>(
      jobs, 2 * static_cast<std::size_t>(trials), [&](std::size_t i) {
        const net::Routing routing = routings[i / trials];
        return run_one_trial(routing, static_cast<int>(i % trials), bytes);
      });

  Table table({"routing", "last-byte premature", "rvma complete",
               "rdma poll lat us", "rvma lat us"});
  for (std::size_t r = 0; r < 2; ++r) {
    int premature = 0, complete = 0;
    RunningStat rdma_lat, rvma_lat;
    for (int t = 0; t < trials; ++t) {
      const TrialResult& trial = results[r * trials + t];
      premature += trial.premature;
      complete += trial.rvma_complete;
      // A completion that never fired leaves its latency at 0 — keep it
      // out of the stat instead of dragging the mean toward zero.
      if (trial.rdma_lat_us > 0) rdma_lat.add(trial.rdma_lat_us);
      if (trial.rvma_lat_us > 0) rvma_lat.add(trial.rvma_lat_us);
    }
    table.add_row({std::string(net::to_string(routings[r])),
                   std::to_string(premature) + "/" + std::to_string(trials),
                   std::to_string(complete) + "/" + std::to_string(trials),
                   Table::stat_num(rdma_lat.count(), rdma_lat.mean()),
                   Table::stat_num(rvma_lat.count(), rvma_lat.mean())});
  }
  table.print();
  std::printf("\nstatic routing: last-byte polling is safe (0 premature).\n"
              "adaptive routing: it corrupts; RVMA completes every transfer\n"
              "with the full byte count regardless of arrival order.\n");
  return 0;
}
