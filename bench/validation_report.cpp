// Model validation report (paper §V-B: "The models are validated...").
//
// Prints, per system profile and completion scheme, the analytic pipeline
// prediction vs the simulated one-way latency (they must agree exactly),
// plus the effective-bandwidth asymptote that shows the simulator honors
// the configured link rate.
//
// Every point is an independent two-node simulation, so the whole grid
// (profile x mode x size, plus the bandwidth asymptote) fans out over
// exec::SweepExecutor; rows print in deterministic grid order regardless
// of --jobs.
#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "exec/sweep_executor.hpp"
#include "obs/metrics_io.hpp"
#include "perf/validation.hpp"

using namespace rvma;
using namespace rvma::perf;

namespace {

/// Sweep unit: the validation row plus the run's metrics, carried back
/// through sweep_map so aggregation happens in grid order on the main
/// thread (no shared snapshot mutated from workers).
struct PointResult {
  ValidationRow row;
  obs::MetricsSnapshot metrics;
};

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int jobs = static_cast<int>(cli.get_int("jobs", 0));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const std::string metrics_path = cli.get("metrics", "");
  for (const auto& key : cli.unconsumed()) {
    std::fprintf(stderr, "unknown option --%s\n", key.c_str());
    return 2;
  }

  const std::vector<std::uint64_t> sizes = {2,     64,      1024,
                                            16384, 262144, 4194304};
  const std::vector<SystemProfile> profiles = {verbs_opa(), ucx_cx5()};
  const std::vector<Mode> modes = {Mode::kRvma, Mode::kRdmaStatic,
                                   Mode::kRdmaAdaptive};
  std::printf("validation sweep: seed %llu\n\n",
              static_cast<unsigned long long>(seed));

  // Flatten (profile, mode, size) row-major so printing below can walk
  // the results grid in order.
  const std::size_t points = profiles.size() * modes.size() * sizes.size();
  const auto results = exec::sweep_map<PointResult>(
      jobs, points, [&](std::size_t i) {
        const std::size_t pi = i / (modes.size() * sizes.size());
        const std::size_t mi = (i / sizes.size()) % modes.size();
        const std::size_t si = i % sizes.size();
        PointResult pr;
        pr.row = validate_point(profiles[pi], modes[mi], sizes[si], seed,
                                metrics_path.empty() ? nullptr : &pr.metrics);
        return pr;
      });

  int mismatches = 0;
  for (std::size_t pi = 0; pi < profiles.size(); ++pi) {
    std::printf("=== profile %s ===\n", profiles[pi].name.c_str());
    for (std::size_t mi = 0; mi < modes.size(); ++mi) {
      Table table({"size", "analytic us", "simulated us", "error"});
      for (std::size_t si = 0; si < sizes.size(); ++si) {
        const ValidationRow& row =
            results[(pi * modes.size() + mi) * sizes.size() + si].row;
        if (row.error() != 0.0) ++mismatches;
        table.add_row({format_size(row.bytes),
                       Table::num(to_us(row.predicted), 4),
                       Table::num(to_us(row.simulated), 4),
                       Table::num(row.error() * 100.0, 3) + "%"});
      }
      std::printf("-- %s --\n", to_string(modes[mi]));
      table.print();
      std::printf("\n");
    }
  }

  std::printf("=== effective bandwidth asymptote (verbs-opa, RVMA) ===\n");
  Table bw({"size", "effective Gbps", "of line rate"});
  const SystemProfile profile = verbs_opa();
  const std::vector<std::uint64_t> bw_sizes = {64ull * KiB, 1ull * MiB,
                                               16ull * MiB, 64ull * MiB};
  const auto gbps_results = exec::sweep_map<double>(
      jobs, bw_sizes.size(), [&](std::size_t i) {
        return effective_bandwidth_gbps(profile, Mode::kRvma, bw_sizes[i],
                                        seed);
      });
  for (std::size_t i = 0; i < bw_sizes.size(); ++i) {
    bw.add_row({format_size(bw_sizes[i]), Table::num(gbps_results[i], 1),
                Table::num(gbps_results[i] / profile.link.bw.gbps_value() *
                               100.0,
                           1) +
                    "%"});
  }
  bw.print();

  if (!metrics_path.empty()) {
    obs::MetricsDoc doc;
    doc.tool = "validation_report";
    doc.meta["seed"] = std::to_string(seed);
    doc.meta["points"] = std::to_string(points);
    // Grid order, same as the tables above — byte-identical at any --jobs.
    for (const PointResult& pr : results) doc.totals.merge(pr.metrics);
    if (!obs::write_metrics_file(doc, metrics_path)) return 1;
    std::printf("metrics written to %s\n", metrics_path.c_str());
  }

  std::printf("\nvalidation %s: %d mismatching points\n",
              mismatches == 0 ? "PASSED" : "FAILED", mismatches);
  return mismatches == 0 ? 0 : 1;
}
