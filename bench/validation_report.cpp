// Model validation report (paper §V-B: "The models are validated...").
//
// Prints, per system profile and completion scheme, the analytic pipeline
// prediction vs the simulated one-way latency (they must agree exactly),
// plus the effective-bandwidth asymptote that shows the simulator honors
// the configured link rate.
#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "perf/validation.hpp"

using namespace rvma;
using namespace rvma::perf;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  for (const auto& key : cli.unconsumed()) {
    std::fprintf(stderr, "unknown option --%s\n", key.c_str());
    return 2;
  }

  const std::vector<std::uint64_t> sizes = {2,     64,      1024,
                                            16384, 262144, 4194304};
  int mismatches = 0;
  for (const SystemProfile& profile : {verbs_opa(), ucx_cx5()}) {
    std::printf("=== profile %s ===\n", profile.name.c_str());
    for (Mode mode : {Mode::kRvma, Mode::kRdmaStatic, Mode::kRdmaAdaptive}) {
      Table table({"size", "analytic us", "simulated us", "error"});
      for (const ValidationRow& row : validate_mode(profile, mode, sizes)) {
        if (row.error() != 0.0) ++mismatches;
        table.add_row({format_size(row.bytes),
                       Table::num(to_us(row.predicted), 4),
                       Table::num(to_us(row.simulated), 4),
                       Table::num(row.error() * 100.0, 3) + "%"});
      }
      std::printf("-- %s --\n", to_string(mode));
      table.print();
      std::printf("\n");
    }
  }

  std::printf("=== effective bandwidth asymptote (verbs-opa, RVMA) ===\n");
  Table bw({"size", "effective Gbps", "of line rate"});
  const SystemProfile profile = verbs_opa();
  for (std::uint64_t bytes : {64ull * KiB, 1ull * MiB, 16ull * MiB, 64ull * MiB}) {
    const double gbps = effective_bandwidth_gbps(profile, Mode::kRvma, bytes);
    bw.add_row({format_size(bytes), Table::num(gbps, 1),
                Table::num(gbps / profile.link.bw.gbps_value() * 100.0, 1) + "%"});
  }
  bw.print();

  std::printf("\nvalidation %s: %d mismatching points\n",
              mismatches == 0 ? "PASSED" : "FAILED", mismatches);
  return mismatches == 0 ? 0 : 1;
}
