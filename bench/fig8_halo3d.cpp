// Figure 8 — RVMA vs RDMA, Halo3D motif.
//
// Paper setup: same SST environment as Figure 7; Halo3D is the
// bandwidth-bound 3-D face-exchange pattern, so topology matters more and
// the RVMA advantage is smaller than for the latency-bound sweep. Paper
// headlines: 1.57x mean speedup; best cases on HyperX DOR — 1.64x at
// 400 Gbps and 1.89x at 2 Tbps.
//
// Default scale 64 ranks (one host core); --nodes=<N> scales up.
#include <cmath>

#include "motif_table.hpp"
#include "motifs/halo3d.hpp"

using namespace rvma;
using namespace rvma::motifs;

int main(int argc, char** argv) {
  MotifBenchConfig bench;
  bench.figure = "Figure 8";
  bench.motif = "Halo3D";
  bench.nodes = 64;
  bench.build = [](int nodes) {
    Halo3DConfig cfg;
    // Near-cubic process grid that fits in `nodes` ranks.
    int p = std::max(1, static_cast<int>(std::cbrt(static_cast<double>(nodes))));
    cfg.px = p;
    cfg.py = p;
    cfg.pz = std::max(1, nodes / (p * p));
    cfg.nx = cfg.ny = cfg.nz = 32;   // 32 KiB faces: bandwidth-sensitive
    cfg.vars = 4;
    cfg.iterations = 4;
    cfg.compute_per_cell = 50 * kPicosecond;
    return build_halo3d(cfg);
  };
  return run_motif_figure(bench, argc, argv);
}
