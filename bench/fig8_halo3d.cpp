// Figure 8 — RVMA vs RDMA, Halo3D motif.
//
// Paper setup: same SST environment as Figure 7; Halo3D is the
// bandwidth-bound 3-D face-exchange pattern, so topology matters more and
// the RVMA advantage is smaller than for the latency-bound sweep. Paper
// headlines: 1.57x mean speedup; best cases on HyperX DOR — 1.64x at
// 400 Gbps and 1.89x at 2 Tbps.
//
// Thin grid-spec emitter over the scenario layer: the bench just names
// the motif and its parameters; src/scenario/figure_grid runs the grid.
// `--emit-grid=<path>` writes the equivalent rvma-scenario-grid-v1
// document for rvma_run. Default scale 64 ranks; --nodes=<N> scales up
// (the process grid re-derives near-cubically from the rank count).
#include "scenario/figure_grid.hpp"

using namespace rvma::scenario;

int main(int argc, char** argv) {
  GridSpec grid;
  grid.figure = "Figure 8";
  grid.motif_label = "Halo3D";
  grid.base.nodes = 64;
  grid.base.motif = "halo3d";
  // 32 KiB faces: bandwidth-sensitive.
  grid.base.motif_params = {{"nx", "32"},
                            {"ny", "32"},
                            {"nz", "32"},
                            {"vars", "4"},
                            {"iterations", "4"},
                            {"compute_per_cell", "50ps"}};
  return run_figure_cli(std::move(grid), argc, argv);
}
