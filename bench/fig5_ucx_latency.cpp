// Figure 5 — RVMA vs. RDMA latency, UCX (UCP) interface.
//
// Paper setup: ConnectX-5 EDR InfiniBand + ThunderX2, UCX 1.9.0, 10 runs
// (error bars = stddev between runs), send/recv completion added after the
// put for the RDMA-compliant case. Paper headline: 45.8% reduction.
#include "latency_table.hpp"

int main(int argc, char** argv) {
  return rvma::perf::run_latency_figure(rvma::perf::ucx_cx5(),
                                        "Figure 5 (UCX)", argc, argv);
}
