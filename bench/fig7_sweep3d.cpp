// Figure 7 — RVMA vs RDMA, Sweep3D motif.
//
// Paper setup: SST motifs at 8,192 nodes (262,144 cores), message sizes
// medium-to-large, crossbar 1.5x link bw, PCIe 150 ns, topologies x routing
// x link speeds {100, 200, 400 Gbps, 2 Tbps}. Paper headlines: RVMA >= 2x
// everywhere, 4.4x best (2 Tbps adaptively routed dragonfly), 3.56x mean.
//
// Default scale here is 64 ranks (simulating on one host core); the
// wavefront's protocol-message critical path — what produces the speedup —
// is per-hop and scale-invariant. Use --nodes=<N> to scale up.
#include <cmath>

#include "motif_table.hpp"
#include "motifs/sweep3d.hpp"

using namespace rvma;
using namespace rvma::motifs;

int main(int argc, char** argv) {
  MotifBenchConfig bench;
  bench.figure = "Figure 7";
  bench.motif = "Sweep3D";
  bench.nodes = 64;
  bench.build = [](int nodes) {
    Sweep3DConfig cfg;
    // Near-square process grid that fits in `nodes` ranks.
    cfg.pex = std::max(1, static_cast<int>(std::sqrt(nodes)));
    cfg.pey = std::max(1, nodes / cfg.pex);
    // Medium-size wavefront messages (paper: "medium to large"): 12 KiB
    // faces, so serialization matters at 100 Gbps while the per-step
    // control messages dominate at 2 Tbps — the crossover the paper shows.
    cfg.nx = 48;
    cfg.ny = 48;
    cfg.nz = 64;
    cfg.kba = 8;
    cfg.vars = 4;
    // Paper: motifs "use minimal compute to compare the impact of
    // communication" — keep the block work well under the message costs.
    cfg.compute_per_cell = 20 * kPicosecond;
    return build_sweep3d(cfg);
  };
  return run_motif_figure(bench, argc, argv);
}
