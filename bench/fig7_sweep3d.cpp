// Figure 7 — RVMA vs RDMA, Sweep3D motif.
//
// Paper setup: SST motifs at 8,192 nodes (262,144 cores), message sizes
// medium-to-large, crossbar 1.5x link bw, PCIe 150 ns, topologies x routing
// x link speeds {100, 200, 400 Gbps, 2 Tbps}. Paper headlines: RVMA >= 2x
// everywhere, 4.4x best (2 Tbps adaptively routed dragonfly), 3.56x mean.
//
// Thin grid-spec emitter over the scenario layer: the bench just names
// the motif and its parameters; src/scenario/figure_grid runs the grid.
// `--emit-grid=<path>` writes the equivalent rvma-scenario-grid-v1
// document for rvma_run. Default scale here is 64 ranks (simulating on
// one host core); the wavefront's protocol-message critical path — what
// produces the speedup — is per-hop and scale-invariant. Use --nodes=<N>
// to scale up (the process grid re-derives near-squarely).
#include "scenario/figure_grid.hpp"

using namespace rvma::scenario;

int main(int argc, char** argv) {
  GridSpec grid;
  grid.figure = "Figure 7";
  grid.motif_label = "Sweep3D";
  grid.base.nodes = 64;
  grid.base.motif = "sweep3d";
  // Medium-size wavefront messages (paper: "medium to large"): 12 KiB
  // faces, so serialization matters at 100 Gbps while the per-step
  // control messages dominate at 2 Tbps — the crossover the paper shows.
  // Minimal compute (paper: motifs "use minimal compute to compare the
  // impact of communication") keeps block work under the message costs.
  grid.base.motif_params = {{"nx", "48"},
                            {"ny", "48"},
                            {"nz", "64"},
                            {"kba", "8"},
                            {"vars", "4"},
                            {"compute_per_cell", "20ps"}};
  return run_figure_cli(std::move(grid), argc, argv);
}
