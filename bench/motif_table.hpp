// Shared driver for the Figure 7 / Figure 8 motif tables: runs one motif
// over every (topology, routing, link speed) x (RDMA, RVMA) combination
// and prints per-combination times and speedups.
#pragma once

#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "motifs/rdma_transport.hpp"
#include "motifs/runner.hpp"
#include "motifs/rvma_transport.hpp"

namespace rvma::motifs {

struct MotifBenchConfig {
  const char* figure = "";
  const char* motif = "";
  int nodes = 64;
  /// RDMA credit-pipeline depth (registered slots per channel). 2 =
  /// double buffering, the standard tuned-RDMA practice; the remaining
  /// RDMA penalty is then the fixed-latency coordination traffic.
  int rdma_slots = 2;
  /// Builds the per-rank programs for a cluster of exactly `nodes` ranks.
  std::function<std::vector<RankProgram>(int nodes)> build;
  std::vector<double> gbps = {100, 200, 400, 2000};
};

struct MotifCell {
  Time rdma = 0;
  Time rvma = 0;
  double speedup() const {
    return rvma == 0 ? 0.0
                     : static_cast<double>(rdma) / static_cast<double>(rvma);
  }
};

inline Time run_motif_once(const MotifBenchConfig& bench,
                           net::TopologyKind kind, net::Routing routing,
                           Bandwidth bw, bool use_rvma) {
  net::NetworkConfig cfg;
  cfg.topology = kind;
  cfg.routing = routing;
  cfg.nodes_hint = bench.nodes;
  cfg.link.bw = bw;
  cfg.link.latency = 100 * kNanosecond;
  cfg.switch_latency = 100 * kNanosecond;
  cfg.xbar_factor = 1.5;  // crossbar always 50% above link bw (paper §V-B1)
  cfg.seed = 2021;

  nic::Cluster cluster(cfg, nic::NicParams{});
  auto programs = bench.build(bench.nodes);
  if (use_rvma) {
    RvmaTransport transport(cluster, core::RvmaParams{});
    return MotifRunner(cluster, transport, std::move(programs)).run().makespan;
  }
  RdmaTransport transport(cluster, rdma::RdmaParams{},
                          routing == net::Routing::kStatic, bench.rdma_slots);
  return MotifRunner(cluster, transport, std::move(programs)).run().makespan;
}

inline int run_motif_figure(MotifBenchConfig bench, int argc, char** argv) {
  Cli cli(argc, argv);
  bench.nodes = static_cast<int>(cli.get_int("nodes", bench.nodes));
  bench.rdma_slots =
      static_cast<int>(cli.get_int("rdma-slots", bench.rdma_slots));
  const bool quick = cli.get_bool("quick", false);
  for (const auto& key : cli.unconsumed()) {
    std::fprintf(stderr, "unknown option --%s\n", key.c_str());
    return 2;
  }
  if (quick) bench.gbps = {100, 2000};

  struct TopoCase {
    const char* name;
    net::TopologyKind kind;
    net::Routing routing;
  };
  const std::vector<TopoCase> cases = {
      {"torus3d-static", net::TopologyKind::kTorus3D, net::Routing::kStatic},
      {"torus3d-adaptive", net::TopologyKind::kTorus3D, net::Routing::kAdaptive},
      {"fattree-static", net::TopologyKind::kFatTree, net::Routing::kStatic},
      {"fattree-adaptive", net::TopologyKind::kFatTree, net::Routing::kAdaptive},
      {"dragonfly-static", net::TopologyKind::kDragonfly, net::Routing::kStatic},
      {"dragonfly-adaptive", net::TopologyKind::kDragonfly,
       net::Routing::kAdaptive},
      {"hyperx-DOR", net::TopologyKind::kHyperX, net::Routing::kStatic},
      {"hyperx-adaptive", net::TopologyKind::kHyperX, net::Routing::kAdaptive},
  };

  std::printf("%s: %s motif, RVMA vs RDMA across topologies, routing, and "
              "link speeds (%d ranks)\n",
              bench.figure, bench.motif, bench.nodes);
  std::printf("crossbar = 1.5x link bw, PCIe 150 ns (paper model "
              "parameters)\n\n");

  std::vector<std::string> headers = {"topology-routing"};
  for (double g : bench.gbps) {
    headers.push_back(format_bandwidth(Bandwidth::gbps(g)) + " rdma");
    headers.push_back("rvma");
    headers.push_back("speedup");
  }
  Table table(headers);

  RunningStat all_speedups;
  double best = 0.0;
  std::string best_case;
  for (const TopoCase& tc : cases) {
    std::vector<std::string> row = {tc.name};
    for (double g : bench.gbps) {
      const Bandwidth bw = Bandwidth::gbps(g);
      MotifCell cell;
      cell.rdma = run_motif_once(bench, tc.kind, tc.routing, bw, false);
      cell.rvma = run_motif_once(bench, tc.kind, tc.routing, bw, true);
      const double speedup = cell.speedup();
      all_speedups.add(speedup);
      if (speedup > best) {
        best = speedup;
        best_case = std::string(tc.name) + " @ " + format_bandwidth(bw);
      }
      row.push_back(Table::num(to_ms(cell.rdma), 3) + " ms");
      row.push_back(Table::num(to_ms(cell.rvma), 3) + " ms");
      row.push_back(Table::num(speedup, 2) + "x");
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::printf("\naverage RVMA speedup across all topologies/speeds: %.2fx\n",
              all_speedups.mean());
  std::printf("best case: %.2fx (%s)\n", best, best_case.c_str());
  std::printf("min speedup: %.2fx\n", all_speedups.min());
  return 0;
}

}  // namespace rvma::motifs
