// The Figure 7 / Figure 8 grid driver now lives in the motifs library
// (src/motifs/figure_bench.hpp) so tests can exercise the parallel sweep
// path; this header remains for the bench binaries' includes.
#pragma once

#include "motifs/figure_bench.hpp"
