// Figure 6 — UCX amortization analysis.
//
// RDMA requires a buffer-negotiation handshake (address/length exchange +
// memory registration) before any put. Microbenchmarks reuse buffers, so
// this setup cost amortizes — the paper measures how many exchanges are
// needed before the average per-exchange cost is within 3% (the latency
// tests' margin of error) of the steady-state transfer latency, for both
// static- and adaptive-routing RDMA. RVMA needs zero: data transfer begins
// without any initial buffer coordination.
#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "perf/latency.hpp"

using namespace rvma;
using namespace rvma::perf;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int iters = static_cast<int>(cli.get_int("iters", 200));
  const double margin = cli.get_double("margin", 0.03);
  const int max_exp = static_cast<int>(cli.get_int("max-exp", 22));
  for (const auto& key : cli.unconsumed()) {
    std::fprintf(stderr, "unknown option --%s\n", key.c_str());
    return 2;
  }

  const SystemProfile profile = ucx_cx5();
  std::printf("Figure 6 (UCX): exchanges needed to amortize RDMA buffer "
              "setup to within %.0f%%\n",
              margin * 100.0);
  std::printf("system %s; setup = request + target alloc/registration + "
              "addr/len reply\n\n",
              profile.name.c_str());

  Table table({"size", "setup us", "xfer-static us", "N-static",
               "xfer-adaptive us", "N-adaptive", "N-rvma"});
  for (int exp = 1; exp <= max_exp; exp += 3) {
    const std::uint64_t bytes = 1ULL << exp;
    const Time setup = measure_setup_time(profile, bytes);
    const auto xfer_static =
        measure_put_latency(profile, Mode::kRdmaStatic, bytes, iters, 1, 3);
    const auto xfer_adaptive =
        measure_put_latency(profile, Mode::kRdmaAdaptive, bytes, iters, 1, 3);
    const auto n_static =
        amortization_exchanges(setup, us(xfer_static.mean_us), margin);
    const auto n_adaptive =
        amortization_exchanges(setup, us(xfer_adaptive.mean_us), margin);
    table.add_row({format_size(bytes), Table::num(to_us(setup)),
                   Table::num(xfer_static.mean_us),
                   std::to_string(n_static),
                   Table::num(xfer_adaptive.mean_us),
                   std::to_string(n_adaptive),
                   "0"});  // RVMA: no setup coordination at all
  }
  table.print();
  std::printf("\nRVMA requires no buffer negotiation: transfers begin at "
              "exchange 1.\n");
  return 0;
}
