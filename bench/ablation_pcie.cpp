// Ablation: PCIe generation (host-NIC crossing latency).
//
// Paper §V-B: "Both models use a PCIe latency of 150ns, meant to balance
// bus latencies between PCIe Gen 4 and Gen 5. With PCIe Gen 6 set to have
// much lower latencies (tens of nanoseconds) ... The results for current
// PCIe generations are therefore a conservative modeling of RVMA's future
// impact." This sweeps the crossing latency across generations and shows
// (a) small-message latency for each completion scheme and (b) the Sweep3D
// RVMA speedup, which grows as the bus gets faster.
#include <cmath>
#include <cstdio>
#include <iterator>

#include "cluster/cluster.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "exec/sweep_executor.hpp"
#include "motifs/rdma_transport.hpp"
#include "motifs/runner.hpp"
#include "motifs/rvma_transport.hpp"
#include "motifs/sweep3d.hpp"
#include "perf/latency.hpp"

using namespace rvma;
using namespace rvma::perf;

namespace {

Time sweep_time(Time pcie, bool use_rvma) {
  net::NetworkConfig cfg;
  cfg.topology = net::TopologyKind::kDragonfly;
  cfg.routing = net::Routing::kAdaptive;
  cfg.nodes_hint = 36;
  cfg.link.bw = Bandwidth::gbps(400);
  cfg.seed = 4;
  nic::NicParams nic_params;
  nic_params.pcie_latency = pcie;
  cluster::Cluster cluster(cfg, nic_params);

  motifs::Sweep3DConfig sweep;
  sweep.pex = 6;
  sweep.pey = 6;
  sweep.nx = sweep.ny = 48;
  sweep.nz = 64;
  sweep.kba = 8;
  sweep.vars = 4;
  sweep.compute_per_cell = 20 * kPicosecond;
  auto programs = motifs::build_sweep3d(sweep);

  if (use_rvma) {
    motifs::RvmaTransport transport(cluster, core::RvmaParams{});
    return motifs::MotifRunner(cluster, transport, std::move(programs))
        .run()
        .makespan;
  }
  motifs::RdmaTransport transport(cluster, rdma::RdmaParams{}, false, 2);
  return motifs::MotifRunner(cluster, transport, std::move(programs))
      .run()
      .makespan;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int jobs = static_cast<int>(cli.get_int("jobs", 0));
  for (const auto& key : cli.unconsumed()) {
    std::fprintf(stderr, "unknown option --%s\n", key.c_str());
    return 2;
  }

  struct Gen {
    const char* name;
    Time latency;
  };
  const Gen gens[] = {
      {"Gen3 (300ns)", 300 * kNanosecond},
      {"Gen4/5 (150ns, paper)", 150 * kNanosecond},
      {"Gen6 (20ns)", 20 * kNanosecond},
  };

  std::printf("Ablation: PCIe host-NIC crossing latency (paper §V-B)\n\n");
  // Both tables are grids of independent simulations: (generation x mode)
  // latency runs and (generation x protocol) motif runs — fan them all
  // out together and print in generation order.
  const std::size_t n_gens = std::size(gens);
  const auto lat_results = exec::sweep_map<LatencyResult>(
      jobs, n_gens * 2, [&](std::size_t i) {
        SystemProfile profile = verbs_opa();
        profile.nic.pcie_latency = gens[i / 2].latency;
        const Mode mode = (i % 2) == 0 ? Mode::kRvma : Mode::kRdmaAdaptive;
        return measure_put_latency(profile, mode, 8, 100, 1, 1);
      });
  Table lat({"generation", "rvma 8B us", "rdma-adaptive 8B us", "reduction"});
  for (std::size_t i = 0; i < n_gens; ++i) {
    const LatencyResult& rvma = lat_results[i * 2];
    const LatencyResult& rdma = lat_results[i * 2 + 1];
    lat.add_row({gens[i].name, Table::num(rvma.mean_us),
                 Table::num(rdma.mean_us),
                 Table::num((1.0 - rvma.mean_us / rdma.mean_us) * 100.0, 1) +
                     "%"});
  }
  lat.print();

  std::printf("\nSweep3D on adaptive dragonfly @ 400 Gbps, 36 ranks:\n");
  const auto motif_results = exec::sweep_map<Time>(
      jobs, n_gens * 2, [&](std::size_t i) {
        return sweep_time(gens[i / 2].latency, (i % 2) != 0);
      });
  Table motif({"generation", "rdma ms", "rvma ms", "speedup"});
  for (std::size_t i = 0; i < n_gens; ++i) {
    const Time rdma = motif_results[i * 2];
    const Time rvma = motif_results[i * 2 + 1];
    motif.add_row({gens[i].name, Table::num(to_ms(rdma), 3),
                   Table::num(to_ms(rvma), 3),
                   Table::num(static_cast<double>(rdma) /
                                  static_cast<double>(rvma),
                              2) +
                       "x"});
  }
  motif.print();
  std::printf(
      "\nObservations: RDMA crosses the bus more often per message (CQEs,\n"
      "doorbells for the trailing send), so SLOWER buses widen the gap and\n"
      "the paper's 150 ns setting is indeed conservative relative to Gen 3\n"
      "deployments. At Gen 6 the absolute latencies drop for both, and the\n"
      "on-NIC counter-spill penalty becomes negligible (see\n"
      "ablation_counters) — the paper's §III-B point.\n");
  return 0;
}
