// Ablation: bounded on-NIC counter pool with host-memory spill.
//
// The paper (§III-B) argues the RVMA translation table is sparse, so a
// limited counter pool suffices; overflowing to host memory costs ~200 ns
// per update on today's PCIe and tens of ns on Gen 6+. This bench sweeps
// the pool size against a fixed number of concurrently active mailboxes
// and reports completion latency with both penalty settings.
#include <cstdio>
#include <memory>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/cli.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/endpoint.hpp"
#include "exec/sweep_executor.hpp"

using namespace rvma;
using core::EpochType;
using core::RvmaEndpoint;
using core::RvmaParams;

namespace {

struct Result {
  double mean_us;
  std::uint64_t spilled_packets;
};

Result run_case(int active_mailboxes, int nic_counters, Time penalty,
                int epochs) {
  net::NetworkConfig cfg;
  cfg.topology = net::TopologyKind::kStar;
  cfg.nodes_hint = 2;
  cluster::Cluster cluster(cfg, nic::NicParams{});
  RvmaParams params;
  params.nic_counters = nic_counters;
  params.host_counter_penalty = penalty;
  RvmaEndpoint sender(cluster.nic(0), params);
  RvmaEndpoint receiver(cluster.nic(1), params);

  constexpr std::uint64_t kBytes = 1024;
  RunningStat lat;
  std::vector<Time> put_at(active_mailboxes);
  for (int m = 0; m < active_mailboxes; ++m) {
    const std::uint64_t vaddr = 0x1000 + m;
    receiver.init_window(vaddr, kBytes, EpochType::kBytes);
    for (int e = 0; e < epochs; ++e) {
      receiver.post_buffer_timing_only(vaddr, kBytes);
    }
    receiver.set_completion_observer(vaddr, [&, m](void*, std::int64_t) {
      lat.add(to_us(cluster.engine().now() - put_at[m]));
    });
  }
  // Serialized epochs per mailbox, all mailboxes concurrently.
  for (int e = 0; e < epochs; ++e) {
    cluster.engine().schedule(
        static_cast<Time>(e) * 20 * kMicrosecond, [&, e] {
          for (int m = 0; m < active_mailboxes; ++m) {
            put_at[m] = cluster.engine().now();
            sender.put(1, 0x1000 + m, 0, nullptr, kBytes);
          }
        });
  }
  cluster.engine().run();
  return {lat.mean(), receiver.stats().host_counter_packets};
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int mailboxes = static_cast<int>(cli.get_int("mailboxes", 64));
  const int epochs = static_cast<int>(cli.get_int("epochs", 20));
  const int jobs = static_cast<int>(cli.get_int("jobs", 0));
  for (const auto& key : cli.unconsumed()) {
    std::fprintf(stderr, "unknown option --%s\n", key.c_str());
    return 2;
  }

  std::printf("Ablation: on-NIC counter pool size vs completion latency\n");
  std::printf("%d concurrently active mailboxes, %d epochs each, 1 KiB "
              "epochs\n\n",
              mailboxes, epochs);

  Table table({"nic counters", "spilled pkts", "lat us (PCIe5 200ns)",
               "lat us (PCIe6 20ns)"});
  const std::vector<int> pool_sizes = {0, 8, 16, 32, 48, 64, 128};
  // Each (pool size, PCIe gen) case is an independent simulation: fan the
  // grid out over the sweep executor, collect in deterministic order.
  const auto results = exec::sweep_map<Result>(
      jobs, pool_sizes.size() * 2, [&](std::size_t i) {
        const int counters = pool_sizes[i / 2];
        const Time penalty =
            (i % 2) == 0 ? 200 * kNanosecond : 20 * kNanosecond;
        return run_case(mailboxes, counters, penalty, epochs);
      });
  for (std::size_t i = 0; i < pool_sizes.size(); ++i) {
    const Result& gen5 = results[i * 2];
    const Result& gen6 = results[i * 2 + 1];
    table.add_row({std::to_string(pool_sizes[i]),
                   std::to_string(gen5.spilled_packets),
                   Table::num(gen5.mean_us, 3), Table::num(gen6.mean_us, 3)});
  }
  table.print();
  std::printf("\npool >= active mailboxes -> zero spill, no penalty; the\n"
              "PCIe Gen 6 row shows the paper's point that the spill cost\n"
              "becomes minimal on future buses.\n");
  return 0;
}
