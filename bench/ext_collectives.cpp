// Extension table (beyond the paper's figures): RVMA vs RDMA on collective
// patterns — dissemination barrier, ring allreduce, binomial broadcast.
//
// Collectives are chains of small dependent messages, the workload class
// the paper's Sweep3D result suggests benefits most; this table checks the
// conclusion generalizes.
#include <cmath>
#include <cstdio>

#include "cluster/cluster.hpp"
#include "common/cli.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "motifs/collectives.hpp"
#include "motifs/rdma_transport.hpp"
#include "motifs/runner.hpp"
#include "motifs/rvma_transport.hpp"

using namespace rvma;
using namespace rvma::motifs;

namespace {

Time run_once(const std::vector<RankProgram>& programs, int nodes,
              net::Routing routing, Bandwidth bw, bool use_rvma) {
  net::NetworkConfig cfg;
  cfg.topology = net::TopologyKind::kDragonfly;
  cfg.routing = routing;
  cfg.nodes_hint = nodes;
  cfg.link.bw = bw;
  cfg.seed = 11;
  cluster::Cluster cluster(cfg, nic::NicParams{});
  if (use_rvma) {
    RvmaTransport transport(cluster, core::RvmaParams{});
    return MotifRunner(cluster, transport, programs).run().makespan;
  }
  RdmaTransport transport(cluster, rdma::RdmaParams{},
                          routing == net::Routing::kStatic, 2);
  return MotifRunner(cluster, transport, programs).run().makespan;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int ranks = static_cast<int>(cli.get_int("ranks", 32));
  for (const auto& key : cli.unconsumed()) {
    std::fprintf(stderr, "unknown option --%s\n", key.c_str());
    return 2;
  }

  struct Entry {
    const char* name;
    std::vector<RankProgram> programs;
  };
  BarrierConfig barrier_cfg;
  barrier_cfg.ranks = ranks;
  barrier_cfg.iterations = 8;
  AllReduceConfig allreduce_cfg;
  allreduce_cfg.ranks = ranks;
  allreduce_cfg.bytes = 1 * MiB;
  allreduce_cfg.iterations = 2;
  BroadcastConfig bcast_cfg;
  bcast_cfg.ranks = ranks;
  bcast_cfg.bytes = 64 * KiB;
  bcast_cfg.iterations = 8;

  const std::vector<Entry> entries = {
      {"barrier(8 iters)", build_barrier(barrier_cfg)},
      {"allreduce(1MiB x2)", build_allreduce(allreduce_cfg)},
      {"broadcast(64KiB x8)", build_broadcast(bcast_cfg)},
  };

  std::printf("Extension: collectives on adaptive dragonfly, %d ranks, "
              "RVMA vs RDMA\n\n",
              ranks);
  Table table({"collective", "100G rdma us", "rvma us", "speedup",
               "2T rdma us", "rvma us", "speedup"});
  RunningStat speedups;
  for (const Entry& entry : entries) {
    std::vector<std::string> row = {entry.name};
    for (double gbps : {100.0, 2000.0}) {
      const Bandwidth bw = Bandwidth::gbps(gbps);
      const Time rdma =
          run_once(entry.programs, ranks, net::Routing::kAdaptive, bw, false);
      const Time rvma =
          run_once(entry.programs, ranks, net::Routing::kAdaptive, bw, true);
      const double speedup =
          static_cast<double>(rdma) / static_cast<double>(rvma);
      speedups.add(speedup);
      row.push_back(Table::num(to_us(rdma), 1));
      row.push_back(Table::num(to_us(rvma), 1));
      row.push_back(Table::num(speedup, 2) + "x");
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::printf("\naverage collective speedup: %.2fx\n", speedups.mean());
  return 0;
}
