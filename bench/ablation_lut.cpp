// google-benchmark microbenchmark: the RVMA mailbox LUT vs Portals-style
// list matching.
//
// The paper argues single-lookup (no-wildcard) resolution keeps the RVMA
// NIC simpler than Portals-style matching (§IV-A): the LUT resolves in one
// probe regardless of occupancy, while posted-order wildcard matching must
// walk a list. This measures both host models across occupancies — the
// data structures themselves, not simulated time.
#include <benchmark/benchmark.h>

#include <memory>
#include <unordered_map>

#include "core/mailbox.hpp"
#include "portals/match_list.hpp"

using rvma::core::EpochType;
using rvma::core::Mailbox;
using rvma::core::Placement;
using rvma::core::PostedBuffer;
using rvma::portals::MatchEntry;
using rvma::portals::MatchList;

namespace {

std::unordered_map<std::uint64_t, std::unique_ptr<Mailbox>> make_lut(
    std::int64_t entries) {
  std::unordered_map<std::uint64_t, std::unique_ptr<Mailbox>> lut;
  lut.reserve(static_cast<std::size_t>(entries));
  for (std::int64_t i = 0; i < entries; ++i) {
    const std::uint64_t vaddr = 0x11FF0000ULL + static_cast<std::uint64_t>(i) * 0x20;
    lut.emplace(vaddr, std::make_unique<Mailbox>(vaddr, 4096, EpochType::kBytes,
                                                 Placement::kSteered, 8));
  }
  return lut;
}

void BM_LutLookupHit(benchmark::State& state) {
  auto lut = make_lut(state.range(0));
  std::uint64_t i = 0;
  for (auto _ : state) {
    const std::uint64_t vaddr =
        0x11FF0000ULL + (i++ % static_cast<std::uint64_t>(state.range(0))) * 0x20;
    benchmark::DoNotOptimize(lut.find(vaddr));
  }
}
BENCHMARK(BM_LutLookupHit)->Arg(16)->Arg(256)->Arg(4096)->Arg(65536);

void BM_LutLookupMiss(benchmark::State& state) {
  auto lut = make_lut(state.range(0));
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lut.find(0xDEAD0000ULL + i++));
  }
}
BENCHMARK(BM_LutLookupMiss)->Arg(16)->Arg(4096)->Arg(65536);

void BM_PostRetireCycle(benchmark::State& state) {
  Mailbox mb(0x1, 4096, EpochType::kBytes, Placement::kSteered,
             static_cast<int>(state.range(0)));
  for (auto _ : state) {
    PostedBuffer buf;
    buf.size = 4096;
    mb.post(buf);
    mb.active().bytes_received = 4096;
    benchmark::DoNotOptimize(mb.retire_active(false));
  }
}
BENCHMARK(BM_PostRetireCycle)->Arg(1)->Arg(8)->Arg(64);

MatchList make_match_list(std::int64_t entries) {
  MatchList list;
  for (std::int64_t i = 0; i < entries; ++i) {
    MatchEntry e;
    e.match_bits = static_cast<std::uint64_t>(i);
    e.use_once = false;
    list.append(e);
  }
  return list;
}

// Portals-style resolution: average over match positions (uniform target),
// so the cost scales with list depth — contrast with BM_LutLookupHit.
void BM_PortalsMatchHit(benchmark::State& state) {
  MatchList list = make_match_list(state.range(0));
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        list.match(0, i++ % static_cast<std::uint64_t>(state.range(0))));
  }
}
BENCHMARK(BM_PortalsMatchHit)->Arg(16)->Arg(256)->Arg(4096);

// Miss: the full list is traversed before falling to the overflow list.
void BM_PortalsMatchMiss(benchmark::State& state) {
  MatchList list = make_match_list(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(list.match(0, ~0ULL));
  }
}
BENCHMARK(BM_PortalsMatchMiss)->Arg(16)->Arg(256)->Arg(4096);

void BM_Rewind(benchmark::State& state) {
  Mailbox mb(0x1, 64, EpochType::kBytes, Placement::kSteered, 64);
  for (int i = 0; i < 64; ++i) {
    PostedBuffer buf;
    buf.size = 64;
    mb.post(buf);
    mb.retire_active(false);
  }
  rvma::core::RetiredBuffer out;
  int back = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mb.rewind(1 + (back++ % 64), &out));
  }
}
BENCHMARK(BM_Rewind);

}  // namespace

BENCHMARK_MAIN();
