// Shared driver for the Figure 4 / Figure 5 latency tables.
#pragma once

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "obs/metrics_io.hpp"
#include "perf/latency.hpp"

namespace rvma::perf {

/// Print the RVMA vs RDMA put-latency table for one system profile.
/// Columns mirror the paper's figures: RDMA under static routing
/// (last-byte poll), RDMA under adaptive routing (spec-compliant trailing
/// send/recv), RVMA, and the latency reduction RVMA achieves versus the
/// adaptive-routing RDMA scheme.
inline int run_latency_figure(const SystemProfile& profile, const char* figure,
                              int argc, char** argv) {
  Cli cli(argc, argv);
  const int iters = static_cast<int>(cli.get_int("iters", 200));
  const int runs = static_cast<int>(cli.get_int("runs", 10));
  const std::uint64_t seed = cli.get_int("seed", 1);
  const int max_exp = static_cast<int>(cli.get_int("max-exp", 22));
  const std::string metrics_path = cli.get("metrics", "");
  for (const auto& key : cli.unconsumed()) {
    std::fprintf(stderr, "unknown option --%s\n", key.c_str());
    return 2;
  }
  obs::MetricsSnapshot totals;
  obs::MetricsSnapshot* metrics_out =
      metrics_path.empty() ? nullptr : &totals;

  std::printf("%s: RVMA vs RDMA one-way put latency (%s)\n", figure,
              profile.name.c_str());
  std::printf("link %s, %d runs x %d iters; stddev across runs\n\n",
              format_bandwidth(profile.link.bw).c_str(), runs, iters);

  Table table({"size", "rdma-static us", "rdma-adaptive us", "rvma us",
               "rvma stddev", "reduction vs adaptive"});
  double best_reduction = 0.0;
  for (int exp = 1; exp <= max_exp; exp += 2) {
    const std::uint64_t bytes = 1ULL << exp;
    const auto rstat = measure_put_latency(profile, Mode::kRdmaStatic, bytes,
                                           iters, runs, seed, metrics_out);
    const auto radpt = measure_put_latency(profile, Mode::kRdmaAdaptive, bytes,
                                           iters, runs, seed, metrics_out);
    const auto rvma = measure_put_latency(profile, Mode::kRvma, bytes, iters,
                                          runs, seed, metrics_out);
    const double reduction = 1.0 - rvma.mean_us / radpt.mean_us;
    best_reduction = std::max(best_reduction, reduction);
    table.add_row({format_size(bytes), Table::num(rstat.mean_us),
                   Table::num(radpt.mean_us), Table::num(rvma.mean_us),
                   Table::num(rvma.stddev_us, 3),
                   Table::num(reduction * 100.0, 1) + "%"});
  }
  table.print();
  std::printf("\nmax latency reduction vs spec-compliant adaptive RDMA: "
              "%.1f%%\n",
              best_reduction * 100.0);
  if (!metrics_path.empty()) {
    obs::MetricsDoc doc;
    doc.tool = figure;
    doc.meta["profile"] = profile.name;
    doc.meta["iters"] = std::to_string(iters);
    doc.meta["runs"] = std::to_string(runs);
    doc.meta["seed"] = std::to_string(seed);
    doc.meta["max_exp"] = std::to_string(max_exp);
    doc.totals = std::move(totals);
    if (!obs::write_metrics_file(doc, metrics_path)) return 1;
    std::printf("metrics written to %s\n", metrics_path.c_str());
  }
  return 0;
}

}  // namespace rvma::perf
