// Shared driver for the Figure 4 / Figure 5 latency tables.
#pragma once

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "perf/latency.hpp"

namespace rvma::perf {

/// Print the RVMA vs RDMA put-latency table for one system profile.
/// Columns mirror the paper's figures: RDMA under static routing
/// (last-byte poll), RDMA under adaptive routing (spec-compliant trailing
/// send/recv), RVMA, and the latency reduction RVMA achieves versus the
/// adaptive-routing RDMA scheme.
inline int run_latency_figure(const SystemProfile& profile, const char* figure,
                              int argc, char** argv) {
  Cli cli(argc, argv);
  const int iters = static_cast<int>(cli.get_int("iters", 200));
  const int runs = static_cast<int>(cli.get_int("runs", 10));
  const std::uint64_t seed = cli.get_int("seed", 1);
  const int max_exp = static_cast<int>(cli.get_int("max-exp", 22));
  for (const auto& key : cli.unconsumed()) {
    std::fprintf(stderr, "unknown option --%s\n", key.c_str());
    return 2;
  }

  std::printf("%s: RVMA vs RDMA one-way put latency (%s)\n", figure,
              profile.name.c_str());
  std::printf("link %s, %d runs x %d iters; stddev across runs\n\n",
              format_bandwidth(profile.link.bw).c_str(), runs, iters);

  Table table({"size", "rdma-static us", "rdma-adaptive us", "rvma us",
               "rvma stddev", "reduction vs adaptive"});
  double best_reduction = 0.0;
  for (int exp = 1; exp <= max_exp; exp += 2) {
    const std::uint64_t bytes = 1ULL << exp;
    const auto rstat =
        measure_put_latency(profile, Mode::kRdmaStatic, bytes, iters, runs, seed);
    const auto radpt = measure_put_latency(profile, Mode::kRdmaAdaptive, bytes,
                                           iters, runs, seed);
    const auto rvma =
        measure_put_latency(profile, Mode::kRvma, bytes, iters, runs, seed);
    const double reduction = 1.0 - rvma.mean_us / radpt.mean_us;
    best_reduction = std::max(best_reduction, reduction);
    table.add_row({format_size(bytes), Table::num(rstat.mean_us),
                   Table::num(radpt.mean_us), Table::num(rvma.mean_us),
                   Table::num(rvma.stddev_us, 3),
                   Table::num(reduction * 100.0, 1) + "%"});
  }
  table.print();
  std::printf("\nmax latency reduction vs spec-compliant adaptive RDMA: "
              "%.1f%%\n",
              best_reduction * 100.0);
  return 0;
}

}  // namespace rvma::perf
