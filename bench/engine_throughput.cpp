// Hot-path microbenchmark: event-engine throughput, fabric packet
// throughput, and per-event heap-allocation counts.
//
// Emits BENCH_engine.json (path via argv[1], default ./BENCH_engine.json)
// with a `baseline` block recorded from the pre-rewrite engine (seed
// d9148ab: std::function callbacks + std::priority_queue + per-packet
// hash-map dispatch) so every future PR can see the perf trajectory.
//
// Workloads mirror what the simulator actually does per event:
//  * chain  — one event schedules the next (a packet hopping switches),
//             carrying a ~64-byte capture (the size of a Packet closure).
//  * fanout — many events pending at once (heap depth stress).
//  * fabric — real Cluster: multi-packet messages through the star fabric
//             and the NIC dispatch path.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <new>
#include <vector>

#include "common/rss.hpp"
#include "net/topology.hpp"
#include "cluster/cluster.hpp"
#include "motifs/halo3d.hpp"
#include "motifs/runner.hpp"
#include "motifs/rvma_transport.hpp"
#include "motifs/sweep3d.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "sim/engine.hpp"

// ------------------------------------------------------------------
// Counting allocator hook: every global new/delete in the process bumps
// a counter, so "allocations per steady-state event" is measured, not
// guessed. Relaxed atomics: the shard-scaling section below runs worker
// threads, and the single-threaded sections don't care about ordering.
static std::atomic<std::uint64_t> g_alloc_count{0};
static std::atomic<std::uint64_t> g_alloc_bytes{0};

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using rvma::Time;
using rvma::sim::Engine;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// ~64-byte payload, the size of a fabric/NIC packet closure.
struct HopPayload {
  std::uint64_t words[8];
};

struct RunStats {
  double events_per_sec = 0;
  double allocs_per_event = 0;
  std::uint64_t events = 0;
};

/// `with_recorder` attaches an armed flight recorder for the whole run.
/// The chain workload hits no frecord() sites, so this measures exactly
/// what the recorder contract promises: an armed ring must not slow the
/// event loop itself (run_bench.sh bounds the delta at 5%).
RunStats bench_chain(std::uint64_t n, bool with_recorder = false) {
  Engine engine;
  rvma::obs::FlightRecorder recorder;
  if (with_recorder) engine.set_flight_recorder(&recorder);
  HopPayload payload{};
  std::uint64_t remaining = n;
  std::uint64_t sink = 0;
  // Warm the engine's internal storage, then count a steady-state window.
  struct Hop {
    Engine& engine;
    std::uint64_t& remaining;
    std::uint64_t& sink;
    HopPayload payload;
    void operator()() const {
      sink += payload.words[0];
      if (--remaining > 0) {
        Hop next = *this;
        ++next.payload.words[0];
        engine.schedule(100, next);
      }
    }
  };
  engine.schedule(0, Hop{engine, remaining, sink, payload});
  // Warm-up: run a slice of the chain so free lists / vectors are sized.
  while (remaining > n - n / 10 && engine.step()) {
  }
  const std::uint64_t allocs_before = g_alloc_count;
  const std::uint64_t events_before = engine.executed_events();
  const auto t0 = std::chrono::steady_clock::now();
  engine.run();
  const double dt = seconds_since(t0);
  const std::uint64_t events = engine.executed_events() - events_before;
  RunStats out;
  out.events = events;
  out.events_per_sec = static_cast<double>(events) / dt;
  out.allocs_per_event =
      static_cast<double>(g_alloc_count - allocs_before) / events;
  if (sink == 0xdeadbeef) std::printf("unreachable\n");
  return out;
}

RunStats bench_fanout(std::uint64_t n, std::uint64_t pending) {
  Engine engine;
  std::uint64_t sink = 0;
  HopPayload payload{};
  // Keep `pending` events outstanding; each executed event re-arms one at a
  // pseudo-random future time (heap churn at realistic depth).
  std::uint64_t scheduled = 0;
  std::uint64_t next_delay = 12345;
  struct Arm {
    Engine& engine;
    std::uint64_t& sink;
    std::uint64_t& scheduled;
    std::uint64_t& next_delay;
    std::uint64_t budget;
    HopPayload payload;
    void operator()() const {
      sink += payload.words[1];
      if (scheduled < budget) {
        ++scheduled;
        next_delay = next_delay * 6364136223846793005ULL + 1442695040888963407ULL;
        Arm next = *this;
        engine.schedule(1 + (next_delay >> 33) % 1000, next);
      }
    }
  };
  for (std::uint64_t i = 0; i < pending; ++i) {
    ++scheduled;
    next_delay = next_delay * 6364136223846793005ULL + 1442695040888963407ULL;
    engine.schedule_at(1 + (next_delay >> 33) % 1000,
                       Arm{engine, sink, scheduled, next_delay, n, payload});
  }
  // Warm-up slice.
  for (std::uint64_t i = 0; i < n / 10 && engine.step(); ++i) {
  }
  const std::uint64_t allocs_before = g_alloc_count;
  const std::uint64_t events_before = engine.executed_events();
  const auto t0 = std::chrono::steady_clock::now();
  engine.run();
  const double dt = seconds_since(t0);
  const std::uint64_t events = engine.executed_events() - events_before;
  RunStats out;
  out.events = events;
  out.events_per_sec = static_cast<double>(events) / dt;
  out.allocs_per_event =
      static_cast<double>(g_alloc_count - allocs_before) / events;
  if (sink == 0xdeadbeef) std::printf("unreachable\n");
  return out;
}

struct FabricStatsOut {
  double packets_per_sec = 0;
  double events_per_sec = 0;
  double allocs_per_packet = 0;
  std::uint64_t packets = 0;
  std::uint64_t express_commits = 0;
  std::uint64_t express_fallbacks = 0;
};

/// Traffic shape: kRing streams node -> node+1 (disjoint paths, the express
/// fast path's best case); kIncast streams every node -> node 0 (ejection
/// contention, the express fallback's worst case).
enum class Pattern { kRing, kIncast };

/// `record` arms the cluster's flight recorder, so every message/packet
/// actually writes span records (the armed-and-recording cost, as opposed
/// to bench_chain's armed-but-idle cost).
FabricStatsOut bench_fabric(std::uint64_t messages, std::uint64_t msg_bytes,
                            Pattern pattern, bool express,
                            bool record = false) {
  namespace net = rvma::net;
  namespace nic = rvma::nic;
  net::NetworkConfig cfg;
  cfg.topology = net::TopologyKind::kStar;
  cfg.nodes_hint = 8;
  cfg.express = express;
  rvma::cluster::Cluster cluster(cfg, nic::NicParams{});
  if (record) cluster.arm_flight_recorder();
  const int n = cluster.num_nodes();
  // Each sender keeps a small window of messages in flight and re-arms when
  // the *last packet of a message is delivered* (not when it is injected:
  // injection-time re-arm grows the in-flight population without bound,
  // which measures ramp allocation instead of steady state).
  constexpr int kWindow = 2;
  std::vector<int> outstanding(static_cast<std::size_t>(n), 0);
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::function<void(int)> send_next = [&](int node) {
    while (outstanding[static_cast<std::size_t>(node)] < kWindow &&
           sent < messages) {
      ++sent;
      ++outstanding[static_cast<std::size_t>(node)];
      net::Message msg;
      msg.src = node;
      msg.dst = pattern == Pattern::kIncast ? 0 : (node + 1) % n;
      msg.bytes = msg_bytes;
      msg.hdr.kind = net::make_kind(nic::kProtoRdma, 1);
      cluster.nic(node).send(std::move(msg), [] {});
    }
  };
  for (int node = 0; node < n; ++node) {
    cluster.nic(node).register_proto(
        nic::kProtoRdma, [&](const net::Packet& pkt) {
          ++received;
          if (pkt.seq + 1 == pkt.total) {
            --outstanding[static_cast<std::size_t>(pkt.src)];
            send_next(pkt.src);
          }
        });
  }
  for (int node = pattern == Pattern::kIncast ? 1 : 0; node < n; ++node) {
    send_next(node);
  }
  // Warm-up slice.
  for (int i = 0; i < 20000 && cluster.engine().step(); ++i) {
  }
  const std::uint64_t allocs_before = g_alloc_count;
  const std::uint64_t events_before = cluster.engine().executed_events();
  const std::uint64_t pkts_before =
      cluster.network().fabric().stats().packets_delivered;
  const auto t0 = std::chrono::steady_clock::now();
  cluster.engine().run();
  const double dt = seconds_since(t0);
  const std::uint64_t pkts =
      cluster.network().fabric().stats().packets_delivered - pkts_before;
  const std::uint64_t events =
      cluster.engine().executed_events() - events_before;
  FabricStatsOut out;
  out.packets = pkts;
  out.packets_per_sec = static_cast<double>(pkts) / dt;
  out.events_per_sec = static_cast<double>(events) / dt;
  out.allocs_per_packet =
      static_cast<double>(g_alloc_count - allocs_before) / pkts;
  out.express_commits = cluster.network().fabric().stats().express_commits;
  out.express_fallbacks = cluster.network().fabric().stats().express_fallbacks;
  if (received == 0) std::printf("unreachable\n");
  return out;
}

struct ShardRow {
  int shards = 1;         ///< requested --par-shards value
  int effective = 1;      ///< after the cluster's exactness clamps
  double wall_seconds = 0;
  double speedup = 1.0;   ///< vs the shards=1 row
  rvma::Time makespan = 0;
  rvma::obs::MetricsSnapshot profile;  ///< collect_pdes_profile() of the run
};

std::uint64_t profile_counter(const rvma::obs::MetricsSnapshot& snap,
                              const std::string& name) {
  const auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

std::int64_t profile_gauge(const rvma::obs::MetricsSnapshot& snap,
                           const std::string& name) {
  const auto it = snap.gauges.find(name);
  return it == snap.gauges.end() ? 0 : it->second;
}

const rvma::obs::HistogramSnapshot* profile_hist(
    const rvma::obs::MetricsSnapshot& snap, const std::string& name) {
  const auto it = snap.histograms.find(name);
  return it == snap.histograms.end() ? nullptr : &it->second;
}

/// PDES shard scaling: the same 512-node halo exchange run serially and
/// with 2/4/8 shards. The makespan must be identical at every K (the
/// bit-identity contract, DESIGN.md §12) — a mismatch aborts the bench.
/// Speedups are wall-clock only and bounded by physical cores; on a
/// single-core host every row degenerates to ~1x plus window overhead.
std::vector<ShardRow> bench_pdes_shards() {
  namespace net = rvma::net;
  namespace nic = rvma::nic;
  using rvma::cluster::Cluster;
  using rvma::motifs::build_halo3d;
  using rvma::motifs::Halo3DConfig;
  using rvma::motifs::MotifRunner;
  using rvma::motifs::RvmaTransport;

  net::NetworkConfig cfg;
  cfg.topology = net::TopologyKind::kTorus3D;
  cfg.routing = net::Routing::kStatic;  // adaptive clamps to serial
  cfg.nodes_hint = 512;
  cfg.seed = 11;

  Halo3DConfig halo;
  halo.px = halo.py = halo.pz = 8;  // 512 ranks
  halo.nx = halo.ny = halo.nz = 8;
  halo.iterations = 2;
  halo.compute_per_cell = 0;

  std::vector<ShardRow> rows;
  for (int k : {1, 2, 4, 8}) {
    Cluster cluster(cfg, nic::NicParams{}, k);
    // Profile the timed run itself: per-window steady_clock reads are
    // noise next to window execution, and the profile then describes
    // exactly the run whose speedup is reported.
    cluster.enable_pdes_profiling();
    RvmaTransport transport(cluster, rvma::core::RvmaParams{});
    const auto t0 = std::chrono::steady_clock::now();
    const auto result =
        MotifRunner(cluster, transport, build_halo3d(halo)).run();
    ShardRow row;
    row.shards = k;
    row.effective = cluster.num_shards();
    row.wall_seconds = seconds_since(t0);
    row.makespan = result.makespan;
    row.profile = cluster.collect_pdes_profile();
    row.speedup = rows.empty() ? 1.0
                               : rows.front().wall_seconds / row.wall_seconds;
    if (!rows.empty() && row.makespan != rows.front().makespan) {
      std::fprintf(stderr,
                   "ERROR: pdes shards=%d makespan %llu != serial %llu\n", k,
                   static_cast<unsigned long long>(row.makespan),
                   static_cast<unsigned long long>(rows.front().makespan));
      std::exit(1);
    }
    rows.push_back(row);
  }
  return rows;
}

struct WindowGateRow {
  int effective = 1;                  ///< effective shard count (matrix run)
  std::uint64_t windows_matrix = 0;   ///< barrier rounds, per-pair matrix
  std::uint64_t windows_scalar = 0;   ///< barrier rounds, scalar ablation
  double reduction = 0;               ///< scalar / matrix
  double stride_mean_matrix_ps = 0;   ///< mean frontier stride per round
  double stride_mean_scalar_ps = 0;
  std::int64_t lookahead_min_ps = 0;  ///< matrix spread (gauges)
  std::int64_t lookahead_max_ps = 0;
  std::int64_t lookahead_mean_ps = 0;
  rvma::Time makespan = 0;
};

/// Deterministic windows_executed regression gate: a 1024-rank Sweep3D
/// wavefront on an 8-group dragonfly (a=1, h=7, p=128 — eight
/// single-switch groups fully meshed by 5us global links), run at K=8
/// twice — once with the per-shard-pair lookahead matrix (the default)
/// and once forced back to the scalar global-minimum lookahead (the
/// pre-matrix ablation). Each shard is exactly one group, so EVERY
/// cross-shard crossing is a 5us optical link while intra-shard hops
/// (node - switch - node) stay at ~100ns copper granularity. The 1-D
/// pipeline keeps a single shard active (all others publish +inf), so
/// the matrix window is the active shard's self bound — its minimum
/// round trip, 2 x 5us — and swallows twice the event clusters per
/// barrier round that the scalar window (global-min crossing, 5us)
/// does: the windows ratio lands at the self-cycle regime's 2.0 cap.
/// The spread between crossing latency and intra-shard event spacing is
/// what the matrix monetizes; on a topology whose slab boundaries are
/// crossed by short links (the balanced dragonfly, any torus slab
/// chain), cycle collapses to 2 x 100ns, below the per-rank event
/// spacing, and both modes pay one round per event cluster (measured
/// ratio 1.00-1.07 — see EXPERIMENTS.md). Window counts are pure
/// functions of the event timeline and the lookahead (no wall clock, no
/// thread timing), so run_bench.sh gates the reduction ratio hard on
/// any host, including single-core ones. All three runs (serial,
/// matrix, scalar) must agree on the makespan; a mismatch aborts the
/// bench.
WindowGateRow bench_pdes_windows() {
  namespace net = rvma::net;
  namespace nic = rvma::nic;
  using rvma::cluster::Cluster;
  using rvma::motifs::build_sweep3d;
  using rvma::motifs::MotifRunner;
  using rvma::motifs::RvmaTransport;
  using rvma::motifs::Sweep3DConfig;

  net::NetworkConfig cfg;
  cfg.topology = net::TopologyKind::kDragonfly;
  cfg.routing = net::Routing::kStatic;
  cfg.nodes_hint = 1024;
  cfg.df_p = 128;  // 8 groups x 1 switch x 128 nodes = 1024
  cfg.df_a = 1;
  cfg.df_h = 7;
  cfg.long_link_latency = 5000 * rvma::kNanosecond;  // 50x local links
  cfg.seed = 11;

  // 1-D pipeline decomposition: the wavefront crosses the 8 contiguous
  // rank slabs strictly one after another, so at any instant one shard is
  // active and seven are idle — the maximum-desynchronization case. (A
  // square pex x pey grid would put every row, and therefore every
  // shard, on the active diagonal simultaneously, and the window counts
  // would collapse back to the scalar's.)
  Sweep3DConfig sweep;
  sweep.pex = 1024;
  sweep.pey = 1;  // 1024 ranks
  sweep.nx = sweep.ny = 16;
  sweep.nz = 8;
  sweep.kba = 8;
  sweep.compute_per_cell = 0;

  auto run_once = [&](int k, bool scalar) {
    Cluster cluster(cfg, nic::NicParams{}, k);
    if (scalar) {
      cluster.sharded_engine().set_lookahead(cluster.lookahead());
    }
    RvmaTransport transport(cluster, rvma::core::RvmaParams{});
    const auto result =
        MotifRunner(cluster, transport, build_sweep3d(sweep)).run();
    struct Out {
      rvma::Time makespan;
      std::uint64_t windows;
      double stride_mean_ps;
      rvma::obs::MetricsSnapshot profile;
      int effective;
    } out;
    out.makespan = result.makespan;
    out.windows = cluster.sharded_engine().windows_executed();
    out.stride_mean_ps = cluster.sharded_engine().window_stride_ps().mean();
    out.profile = cluster.collect_pdes_profile();
    out.effective = cluster.num_shards();
    return out;
  };

  const auto serial = run_once(1, /*scalar=*/false);
  const auto matrix = run_once(8, /*scalar=*/false);
  const auto scalar = run_once(8, /*scalar=*/true);
  if (matrix.makespan != serial.makespan ||
      scalar.makespan != serial.makespan) {
    std::fprintf(stderr,
                 "ERROR: pdes windows-gate makespan mismatch: serial %llu, "
                 "matrix %llu, scalar %llu\n",
                 static_cast<unsigned long long>(serial.makespan),
                 static_cast<unsigned long long>(matrix.makespan),
                 static_cast<unsigned long long>(scalar.makespan));
    std::exit(1);
  }

  WindowGateRow row;
  row.effective = matrix.effective;
  row.windows_matrix = matrix.windows;
  row.windows_scalar = scalar.windows;
  row.reduction = static_cast<double>(scalar.windows) /
                  static_cast<double>(matrix.windows > 0 ? matrix.windows : 1);
  row.stride_mean_matrix_ps = matrix.stride_mean_ps;
  row.stride_mean_scalar_ps = scalar.stride_mean_ps;
  row.lookahead_min_ps = profile_gauge(matrix.profile, "pdes.lookahead_min_ps");
  row.lookahead_max_ps = profile_gauge(matrix.profile, "pdes.lookahead_max_ps");
  row.lookahead_mean_ps =
      profile_gauge(matrix.profile, "pdes.lookahead_mean_ps");
  row.makespan = matrix.makespan;
  return row;
}

struct PaperScaleRow {
  double construct_seconds = 0;  ///< Cluster build: wiring + routes + NICs
  double sim_seconds = 0;        ///< halo3d motif execution
  std::size_t route_table_bytes = 0;
  std::size_t peak_rss_bytes = 0;  ///< process VmHWM after this row ran
  double packets_per_sec = 0;
  std::uint64_t packets = 0;
  rvma::Time makespan = 0;
};

/// Paper-scale (8,192-rank) torus halo exchange, once per route-table
/// mode. Construction time is reported separately from simulation time —
/// the materialized ablation pays an O(S*N) table build (67M oracle route
/// calls at this scale) that the algebraic mode skips entirely. The two
/// modes must agree on the makespan bit-for-bit; a mismatch aborts.
PaperScaleRow bench_paper_scale(rvma::net::RouteTable mode) {
  namespace net = rvma::net;
  namespace nic = rvma::nic;
  using rvma::cluster::Cluster;
  using rvma::motifs::build_halo3d;
  using rvma::motifs::Halo3DConfig;
  using rvma::motifs::MotifRunner;
  using rvma::motifs::RvmaTransport;

  net::NetworkConfig cfg;
  cfg.topology = net::TopologyKind::kTorus3D;
  cfg.routing = net::Routing::kStatic;
  cfg.nodes_hint = 8192;
  cfg.seed = 11;
  cfg.route_table = mode;

  Halo3DConfig halo;
  halo.px = 32;
  halo.py = 16;
  halo.pz = 16;  // 8192 ranks
  halo.nx = halo.ny = halo.nz = 4;
  halo.iterations = 1;
  halo.compute_per_cell = 0;

  PaperScaleRow row;
  const auto t0 = std::chrono::steady_clock::now();
  Cluster cluster(cfg, nic::NicParams{});
  row.construct_seconds = seconds_since(t0);
  row.route_table_bytes = cluster.route_table_bytes();

  RvmaTransport transport(cluster, rvma::core::RvmaParams{});
  const auto t1 = std::chrono::steady_clock::now();
  const auto result = MotifRunner(cluster, transport, build_halo3d(halo)).run();
  row.sim_seconds = seconds_since(t1);
  row.makespan = result.makespan;
  row.packets = cluster.fabric_stats().packets_delivered;
  row.packets_per_sec = static_cast<double>(row.packets) / row.sim_seconds;
  row.peak_rss_bytes = rvma::peak_rss_bytes();
  return row;
}

// Pre-rewrite numbers, measured on the seed engine (commit d9148ab:
// std::function callbacks, std::priority_queue events, unordered_map NIC
// dispatch, per-packet fabric injection) with exactly this benchmark on
// the reference build machine. The acceptance bar for the rewrite is
// >= 2x chain events/sec and 0 allocations per steady-state event.
constexpr double kBaselineChainEventsPerSec = 27.3e6;
constexpr double kBaselineFanoutEventsPerSec = 4.88e6;
constexpr double kBaselinePacketsPerSec = 1.13e6;
constexpr double kBaselineAllocsPerEvent = 1.0;

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_engine.json";

  const RunStats chain = bench_chain(4'000'000);
  const RunStats fanout = bench_fanout(2'000'000, 4096);
  const FabricStatsOut fabric =
      bench_fabric(40'000, 64 * 1024, Pattern::kRing, true);
  const FabricStatsOut fabric_hop =
      bench_fabric(40'000, 64 * 1024, Pattern::kRing, false);
  const FabricStatsOut incast =
      bench_fabric(20'000, 64 * 1024, Pattern::kIncast, true);
  const FabricStatsOut incast_hop =
      bench_fabric(20'000, 64 * 1024, Pattern::kIncast, false);
  // Flight-recorder overhead: armed-but-idle on the chain (the event
  // loop must not slow down) and armed-and-recording on the fabric (the
  // real per-span cost). run_bench.sh bounds the chain delta at 5%.
  const RunStats chain_rec = bench_chain(4'000'000, /*with_recorder=*/true);
  const FabricStatsOut fabric_rec =
      bench_fabric(40'000, 64 * 1024, Pattern::kRing, true, /*record=*/true);
  const std::vector<ShardRow> shards = bench_pdes_shards();
  const WindowGateRow windows_gate = bench_pdes_windows();
  const PaperScaleRow paper_alg =
      bench_paper_scale(rvma::net::RouteTable::kAlgebraic);
  const PaperScaleRow paper_lut =
      bench_paper_scale(rvma::net::RouteTable::kMaterialized);
  if (paper_alg.makespan != paper_lut.makespan) {
    std::fprintf(stderr,
                 "ERROR: paper-scale makespan differs: algebraic %llu != "
                 "materialized %llu\n",
                 static_cast<unsigned long long>(paper_alg.makespan),
                 static_cast<unsigned long long>(paper_lut.makespan));
    return 1;
  }

  const double speedup = chain.events_per_sec / kBaselineChainEventsPerSec;
  const double express_speedup =
      fabric.packets_per_sec / fabric_hop.packets_per_sec;
  const double recorder_chain_overhead_pct =
      100.0 * (1.0 - chain_rec.events_per_sec / chain.events_per_sec);
  const double recorder_fabric_overhead_pct =
      100.0 * (1.0 - fabric_rec.packets_per_sec / fabric.packets_per_sec);

  std::printf("chain : %.2fM events/s, %.3f allocs/event\n",
              chain.events_per_sec / 1e6, chain.allocs_per_event);
  std::printf("fanout: %.2fM events/s, %.3f allocs/event\n",
              fanout.events_per_sec / 1e6, fanout.allocs_per_event);
  std::printf(
      "fabric: %.2fM packets/s, %.2fM events/s, %.3f allocs/packet "
      "(%llu express commits, %llu fallbacks)\n",
      fabric.packets_per_sec / 1e6, fabric.events_per_sec / 1e6,
      fabric.allocs_per_packet,
      static_cast<unsigned long long>(fabric.express_commits),
      static_cast<unsigned long long>(fabric.express_fallbacks));
  std::printf("fabric --no-express: %.2fM packets/s (%.2fx express speedup)\n",
              fabric_hop.packets_per_sec / 1e6, express_speedup);
  std::printf("incast: %.2fM packets/s express, %.2fM packets/s hop-by-hop\n",
              incast.packets_per_sec / 1e6, incast_hop.packets_per_sec / 1e6);
  std::printf(
      "recorder: chain %.2fM events/s armed (%.2f%% overhead), "
      "fabric %.2fM packets/s recording (%.2f%% overhead)\n",
      chain_rec.events_per_sec / 1e6, recorder_chain_overhead_pct,
      fabric_rec.packets_per_sec / 1e6, recorder_fabric_overhead_pct);
  for (const ShardRow& row : shards) {
    std::printf(
        "pdes  : shards=%d (effective %d) %.3fs wall, %.2fx vs serial, "
        "makespan %llu ps\n",
        row.shards, row.effective, row.wall_seconds, row.speedup,
        static_cast<unsigned long long>(row.makespan));
    std::int64_t util_min = 100, util_max = 0;
    std::uint64_t wait_ns = 0, drain_ns = 0, completion_ns = 0;
    char name[64];
    for (int s = 0; s < row.effective; ++s) {
      std::snprintf(name, sizeof(name), "pdes.shard%d.utilization_pct", s);
      const std::int64_t util = profile_gauge(row.profile, name);
      util_min = util < util_min ? util : util_min;
      util_max = util > util_max ? util : util_max;
      std::snprintf(name, sizeof(name), "pdes.shard%d.barrier_wait_wall_ns",
                    s);
      wait_ns += profile_counter(row.profile, name);
      std::snprintf(name, sizeof(name), "pdes.shard%d.drain_wall_ns", s);
      drain_ns += profile_counter(row.profile, name);
      std::snprintf(name, sizeof(name), "pdes.shard%d.completion_wall_ns", s);
      completion_ns += profile_counter(row.profile, name);
    }
    std::printf(
        "        profile: %llu windows, utilization %lld-%lld%%, "
        "barrier wait %.3f ms / drain %.3f ms / completion %.3f ms total\n",
        static_cast<unsigned long long>(
            profile_counter(row.profile, "pdes.windows")),
        static_cast<long long>(util_min), static_cast<long long>(util_max),
        static_cast<double>(wait_ns) / 1e6,
        static_cast<double>(drain_ns) / 1e6,
        static_cast<double>(completion_ns) / 1e6);
  }
  std::printf(
      "pdes windows gate: sweep3d 1024 ranks on 8-group dragonfly mesh, "
      "K=%d: matrix %llu windows "
      "vs scalar %llu (%.2fx fewer), lookahead %lld-%lld ps (mean %lld)\n",
      windows_gate.effective,
      static_cast<unsigned long long>(windows_gate.windows_matrix),
      static_cast<unsigned long long>(windows_gate.windows_scalar),
      windows_gate.reduction,
      static_cast<long long>(windows_gate.lookahead_min_ps),
      static_cast<long long>(windows_gate.lookahead_max_ps),
      static_cast<long long>(windows_gate.lookahead_mean_ps));
  for (const PaperScaleRow* row : {&paper_alg, &paper_lut}) {
    std::printf(
        "8192-node torus (%s): construct %.2fs, simulate %.2fs, "
        "%.2fM packets/s, route table %.1f MiB, peak rss %.0f MiB\n",
        row == &paper_alg ? "algebraic" : "materialized",
        row->construct_seconds, row->sim_seconds, row->packets_per_sec / 1e6,
        static_cast<double>(row->route_table_bytes) / (1024.0 * 1024.0),
        static_cast<double>(row->peak_rss_bytes) / (1024.0 * 1024.0));
  }
  std::printf("speedup vs seed baseline (chain): %.2fx\n", speedup);

  FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"baseline\": {\n"
               "    \"recorded_at\": \"seed d9148ab (std::function + "
               "priority_queue + hash-map dispatch)\",\n"
               "    \"chain_events_per_sec\": %.0f,\n"
               "    \"fanout_events_per_sec\": %.0f,\n"
               "    \"fabric_packets_per_sec\": %.0f,\n"
               "    \"chain_allocs_per_event\": %.3f\n"
               "  },\n"
               "  \"current\": {\n"
               "    \"chain_events_per_sec\": %.0f,\n"
               "    \"chain_allocs_per_event\": %.3f,\n"
               "    \"fanout_events_per_sec\": %.0f,\n"
               "    \"fanout_allocs_per_event\": %.3f,\n"
               "    \"fabric_packets_per_sec\": %.0f,\n"
               "    \"fabric_events_per_sec\": %.0f,\n"
               "    \"fabric_allocs_per_packet\": %.3f,\n"
               "    \"fabric_express_commits\": %llu,\n"
               "    \"fabric_noexpress_packets_per_sec\": %.0f,\n"
               "    \"fabric_noexpress_allocs_per_packet\": %.3f,\n"
               "    \"incast_packets_per_sec\": %.0f,\n"
               "    \"incast_noexpress_packets_per_sec\": %.0f,\n"
               "    \"incast_allocs_per_packet\": %.3f\n"
               "  },\n",
               kBaselineChainEventsPerSec, kBaselineFanoutEventsPerSec,
               kBaselinePacketsPerSec, kBaselineAllocsPerEvent,
               chain.events_per_sec, chain.allocs_per_event,
               fanout.events_per_sec, fanout.allocs_per_event,
               fabric.packets_per_sec, fabric.events_per_sec,
               fabric.allocs_per_packet,
               static_cast<unsigned long long>(fabric.express_commits),
               fabric_hop.packets_per_sec, fabric_hop.allocs_per_packet,
               incast.packets_per_sec, incast_hop.packets_per_sec,
               incast.allocs_per_packet);
  // Key names must not collide with the "current" block's: run_bench.sh
  // extracts gate inputs with `sed | tail -n 1` over the whole file.
  std::fprintf(f,
               "  \"recorder\": {\n"
               "    \"armed_chain_events_per_sec\": %.0f,\n"
               "    \"chain_overhead_pct\": %.2f,\n"
               "    \"recording_fabric_packets_per_sec\": %.0f,\n"
               "    \"fabric_overhead_pct\": %.2f\n"
               "  },\n",
               chain_rec.events_per_sec, recorder_chain_overhead_pct,
               fabric_rec.packets_per_sec, recorder_fabric_overhead_pct);
  std::fprintf(f, "  \"pdes_shards\": [\n");
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const ShardRow& row = shards[i];
    std::fprintf(f,
                 "    {\"shards\": %d, \"effective\": %d, "
                 "\"wall_seconds\": %.3f, \"speedup_vs_serial\": %.3f, "
                 "\"makespan_ps\": %llu}%s\n",
                 row.shards, row.effective, row.wall_seconds, row.speedup,
                 static_cast<unsigned long long>(row.makespan),
                 i + 1 < shards.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"pdes_profile\": [\n");
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const ShardRow& row = shards[i];
    const rvma::obs::HistogramSnapshot* stride =
        profile_hist(row.profile, "pdes.window_stride_ps");
    std::fprintf(f,
                 "    {\"shards\": %d, \"windows\": %llu, "
                 "\"window_stride_ps_mean\": %.0f, \"per_shard\": [\n",
                 row.effective,
                 static_cast<unsigned long long>(
                     profile_counter(row.profile, "pdes.windows")),
                 stride != nullptr ? stride->mean() : 0.0);
    char name[64];
    for (int s = 0; s < row.effective; ++s) {
      std::snprintf(name, sizeof(name), "pdes.shard%d.busy_wall_ns", s);
      const std::uint64_t busy = profile_counter(row.profile, name);
      std::snprintf(name, sizeof(name), "pdes.shard%d.barrier_wait_wall_ns",
                    s);
      const std::uint64_t wait = profile_counter(row.profile, name);
      std::snprintf(name, sizeof(name), "pdes.shard%d.drain_wall_ns", s);
      const std::uint64_t drain = profile_counter(row.profile, name);
      std::snprintf(name, sizeof(name), "pdes.shard%d.completion_wall_ns", s);
      const std::uint64_t completion = profile_counter(row.profile, name);
      std::snprintf(name, sizeof(name), "pdes.shard%d.items_drained", s);
      const std::uint64_t drained = profile_counter(row.profile, name);
      std::snprintf(name, sizeof(name), "pdes.shard%d.utilization_pct", s);
      const std::int64_t util = profile_gauge(row.profile, name);
      std::snprintf(name, sizeof(name), "pdes.shard%d.drain_depth", s);
      const rvma::obs::HistogramSnapshot* depth =
          profile_hist(row.profile, name);
      std::fprintf(f,
                   "      {\"shard\": %d, \"busy_wall_ns\": %llu, "
                   "\"barrier_wait_wall_ns\": %llu, \"drain_wall_ns\": %llu, "
                   "\"completion_wall_ns\": %llu, \"items_drained\": %llu, "
                   "\"utilization_pct\": %lld, \"drain_depth_max\": %llu}%s\n",
                   s, static_cast<unsigned long long>(busy),
                   static_cast<unsigned long long>(wait),
                   static_cast<unsigned long long>(drain),
                   static_cast<unsigned long long>(completion),
                   static_cast<unsigned long long>(drained),
                   static_cast<long long>(util),
                   static_cast<unsigned long long>(depth != nullptr ? depth->max
                                                                    : 0),
                   s + 1 < row.effective ? "," : "");
    }
    std::fprintf(f, "    ]}%s\n", i + 1 < shards.size() ? "," : "");
  }
  std::fprintf(
      f,
      "  ],\n"
      "  \"pdes_windows\": {\n"
      "    \"topology\": \"dragonfly-mesh8\",\n"
      "    \"ranks\": 1024,\n"
      "    \"shards\": %d,\n"
      "    \"windows_matrix\": %llu,\n"
      "    \"windows_scalar\": %llu,\n"
      "    \"window_reduction\": %.3f,\n"
      "    \"window_stride_ps_mean_matrix\": %.0f,\n"
      "    \"window_stride_ps_mean_scalar\": %.0f,\n"
      "    \"lookahead_min_ps\": %lld,\n"
      "    \"lookahead_max_ps\": %lld,\n"
      "    \"lookahead_mean_ps\": %lld,\n"
      "    \"makespan_ps\": %llu\n"
      "  },\n",
      windows_gate.effective,
      static_cast<unsigned long long>(windows_gate.windows_matrix),
      static_cast<unsigned long long>(windows_gate.windows_scalar),
      windows_gate.reduction, windows_gate.stride_mean_matrix_ps,
      windows_gate.stride_mean_scalar_ps,
      static_cast<long long>(windows_gate.lookahead_min_ps),
      static_cast<long long>(windows_gate.lookahead_max_ps),
      static_cast<long long>(windows_gate.lookahead_mean_ps),
      static_cast<unsigned long long>(windows_gate.makespan));
  std::fprintf(f, "  \"paper_scale_8192\": {\n");
  for (const PaperScaleRow* row : {&paper_alg, &paper_lut}) {
    std::fprintf(f,
                 "    \"%s\": {\"construct_seconds\": %.3f, "
                 "\"sim_seconds\": %.3f, \"packets_per_sec\": %.0f, "
                 "\"route_table_bytes\": %llu, \"peak_rss_bytes\": %llu, "
                 "\"makespan_ps\": %llu},\n",
                 row == &paper_alg ? "algebraic" : "materialized",
                 row->construct_seconds, row->sim_seconds,
                 row->packets_per_sec,
                 static_cast<unsigned long long>(row->route_table_bytes),
                 static_cast<unsigned long long>(row->peak_rss_bytes),
                 static_cast<unsigned long long>(row->makespan));
  }
  std::fprintf(
      f, "    \"route_table_bytes_reduction\": %.0f\n  },\n",
      static_cast<double>(paper_lut.route_table_bytes) /
          static_cast<double>(paper_alg.route_table_bytes + 1));
  std::fprintf(f,
               "  \"peak_rss_bytes\": %llu,\n"
               "  \"speedup_chain_events_per_sec\": %.3f,\n"
               "  \"speedup_fabric_express_vs_noexpress\": %.3f\n"
               "}\n",
               static_cast<unsigned long long>(rvma::peak_rss_bytes()),
               speedup, express_speedup);
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return 0;
}
