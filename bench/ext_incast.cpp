// Extension table: many-to-one incast, RVMA vs RDMA, sweeping client
// count — the client-server pattern the paper's abstract says makes RDMA
// "unattractive" (per-client exclusive regions, unbounded reservations).
//
// RVMA serves all clients from ONE mailbox with a receiver-managed bucket;
// RDMA must negotiate and register a region per client and return credits
// per message. The table reports completion time, control-message counts,
// and the registered-region footprint the RDMA server must dedicate.
#include <cstdio>

#include "cluster/cluster.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "motifs/incast.hpp"
#include "motifs/rdma_transport.hpp"
#include "motifs/runner.hpp"
#include "motifs/rvma_transport.hpp"

using namespace rvma;
using namespace rvma::motifs;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int messages = static_cast<int>(cli.get_int("messages", 8));
  const std::uint64_t bytes = cli.get_int("bytes", 16 * KiB);
  for (const auto& key : cli.unconsumed()) {
    std::fprintf(stderr, "unknown option --%s\n", key.c_str());
    return 2;
  }

  std::printf("Extension: incast (many-to-one) on adaptive fat-tree @ "
              "400 Gbps, %d msgs of %llu B per client\n\n",
              messages, static_cast<unsigned long long>(bytes));
  Table table({"clients", "rdma us", "ctrl msgs", "regions", "rvma us",
               "ctrl msgs", "mailboxes", "speedup"});

  for (int clients : {4, 8, 16, 32, 64}) {
    IncastConfig cfg;
    cfg.clients = clients;
    cfg.messages_per_client = messages;
    cfg.bytes = bytes;
    cfg.client_compute = 200 * kNanosecond;

    net::NetworkConfig net_cfg;
    net_cfg.topology = net::TopologyKind::kFatTree;
    net_cfg.routing = net::Routing::kAdaptive;
    net_cfg.nodes_hint = cfg.ranks();
    net_cfg.link.bw = Bandwidth::gbps(400);
    net_cfg.seed = 13;

    Time rdma_time = 0, rvma_time = 0;
    std::uint64_t rdma_ctrl = 0, rvma_ctrl = 0, regions = 0;
    {
      cluster::Cluster cluster(net_cfg, nic::NicParams{});
      RdmaTransport transport(cluster, rdma::RdmaParams{}, false, 2);
      const MotifResult r =
          MotifRunner(cluster, transport, build_incast(cfg)).run();
      rdma_time = r.makespan;
      rdma_ctrl = r.transport.control_messages;
      regions = transport.endpoint(0).stats().regions_registered;
    }
    {
      cluster::Cluster cluster(net_cfg, nic::NicParams{});
      RvmaTransport transport(cluster, core::RvmaParams{});
      const MotifResult r =
          MotifRunner(cluster, transport, build_incast(cfg)).run();
      rvma_time = r.makespan;
      rvma_ctrl = r.transport.control_messages;
    }
    table.add_row({std::to_string(clients), Table::num(to_us(rdma_time), 1),
                   std::to_string(rdma_ctrl), std::to_string(regions),
                   Table::num(to_us(rvma_time), 1),
                   std::to_string(rvma_ctrl),
                   std::to_string(clients),  // one mailbox per channel
                   Table::num(static_cast<double>(rdma_time) /
                                  static_cast<double>(rvma_time),
                              2) +
                       "x"});
  }
  table.print();
  std::printf("\nRDMA: a registered region + credit stream per client.\n"
              "RVMA: receiver-managed buckets, zero control messages.\n");
  return 0;
}
