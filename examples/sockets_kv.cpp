// sockets_kv: a tiny key-value store served over the Receiver-Managed
// RVMA sockets layer (paper §IV-B) — the "public internet client-server"
// usage the paper's abstract says RDMA handles badly.
//
// Clients connect, stream SET/GET requests as length-prefixed records, and
// read replies from their own stream. The server never negotiates buffers
// with clients and holds no per-client registered regions: each connection
// is a mailbox with a receiver-managed segment ring.
//
// Usage: sockets_kv [--clients=4] [--ops=6]
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/cli.hpp"
#include "sockets/socket_stack.hpp"

using namespace rvma;
using sockets::ConnId;
using sockets::SocketParams;
using sockets::SocketStack;

namespace {

// Wire format: [u32 length][text payload]; requests "SET k v" / "GET k",
// replies "OK" / value / "NIL".
void send_record(SocketStack& stack, ConnId conn, const std::string& text) {
  std::vector<std::byte> frame(4 + text.size());
  const std::uint32_t len = static_cast<std::uint32_t>(text.size());
  std::memcpy(frame.data(), &len, 4);
  std::memcpy(frame.data() + 4, text.data(), text.size());
  stack.send(conn, frame.data(), frame.size());
}

/// Drain complete records out of a connection's stream.
std::vector<std::string> drain_records(SocketStack& stack, ConnId conn,
                                       std::string& carry) {
  std::byte buf[4096];
  for (std::uint64_t got = stack.recv(conn, buf, sizeof buf); got > 0;
       got = stack.recv(conn, buf, sizeof buf)) {
    carry.append(reinterpret_cast<const char*>(buf), got);
  }
  std::vector<std::string> records;
  while (carry.size() >= 4) {
    std::uint32_t len = 0;
    std::memcpy(&len, carry.data(), 4);
    if (carry.size() < 4 + len) break;
    records.push_back(carry.substr(4, len));
    carry.erase(0, 4 + len);
  }
  return records;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int clients = static_cast<int>(cli.get_int("clients", 4));
  const int ops = static_cast<int>(cli.get_int("ops", 6));
  for (const auto& key : cli.unconsumed()) {
    std::fprintf(stderr, "unknown option --%s\n", key.c_str());
    return 2;
  }

  net::NetworkConfig net_cfg;
  net_cfg.topology = net::TopologyKind::kFatTree;
  net_cfg.nodes_hint = clients + 1;
  cluster::Cluster cluster(net_cfg, nic::NicParams{});

  std::vector<std::unique_ptr<core::RvmaEndpoint>> eps;
  std::vector<std::unique_ptr<SocketStack>> stacks;
  for (int n = 0; n <= clients; ++n) {
    eps.push_back(std::make_unique<core::RvmaEndpoint>(cluster.nic(n),
                                                       core::RvmaParams{}));
    stacks.push_back(std::make_unique<SocketStack>(*eps.back(), SocketParams{}));
  }
  SocketStack& server = *stacks[0];

  // ---- server: a map + a per-connection record loop.
  std::map<std::string, std::string> store;
  std::map<ConnId, std::string> carries;
  std::function<void(ConnId)> serve = [&](ConnId conn) {
    server.recv_wait(conn, [&, conn] {
      server.claim_partial(conn);  // pull in whatever has arrived
      for (const std::string& req : drain_records(server, conn, carries[conn])) {
        if (req.rfind("SET ", 0) == 0) {
          const auto space = req.find(' ', 4);
          store[req.substr(4, space - 4)] = req.substr(space + 1);
          send_record(server, conn, "OK");
        } else if (req.rfind("GET ", 0) == 0) {
          const auto it = store.find(req.substr(4));
          send_record(server, conn, it == store.end() ? "NIL" : it->second);
        }
      }
      serve(conn);  // keep serving this connection
    });
  };
  server.listen(6379, [&](ConnId conn) { serve(conn); });

  // ---- clients: SETs then GETs, verifying replies.
  int replies_ok = 0, replies_total = 0;
  std::map<int, std::string> client_carry;
  std::function<void(int, ConnId, int)> next_op = [&](int c, ConnId conn,
                                                      int op) {
    if (op >= ops) return;
    const std::string key = "k" + std::to_string(c) + "_" + std::to_string(op / 2);
    if (op % 2 == 0) {
      send_record(*stacks[c], conn, "SET " + key + " v" + std::to_string(c));
    } else {
      send_record(*stacks[c], conn, "GET " + key);
    }
    stacks[c]->recv_wait(conn, [&, c, conn, op] {
      stacks[c]->claim_partial(conn);
      const auto replies = drain_records(*stacks[c], conn, client_carry[c]);
      for (const std::string& reply : replies) {
        ++replies_total;
        const std::string want =
            op % 2 == 0 ? "OK" : "v" + std::to_string(c);
        if (reply == want) ++replies_ok;
      }
      next_op(c, conn, op + 1);
    });
  };
  for (int c = 1; c <= clients; ++c) {
    stacks[c]->connect(0, 6379, [&, c](ConnId conn) { next_op(c, conn, 0); });
  }

  cluster.engine().run();

  std::printf("sockets_kv: %d clients x %d ops over receiver-managed RVMA "
              "streams\n",
              clients, ops);
  std::printf("store size: %zu keys; replies verified: %d/%d; simulated "
              "time %s\n",
              store.size(), replies_ok, replies_total,
              format_time(cluster.engine().now()).c_str());
  const bool success =
      replies_ok == replies_total && replies_total == clients * ops;
  std::printf("result: %s\n", success ? "OK" : "MISMATCH");
  return success ? 0 : 1;
}
