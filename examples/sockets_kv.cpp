// sockets_kv: a tiny key-value store in the paper's "public internet
// client-server" shape (§IV-B) — now expressed entirely over the public
// rvma.h library surface.
//
// The server never negotiates buffers with clients and holds no
// per-client registered regions: every request lands in its catch-all
// mailbox (one receiver-managed buffer ring for all clients), and each
// reply is a single rvma_put into the requesting client's reply window.
// Clients stream SET/GET requests closed-loop from their own contexts.
//
// Wire format: fixed 64-byte records — [u32 client][u32 op] then the
// request ("SET k v" / "GET k") or reply ("OK" / value / "NIL") text.
//
// Usage: sockets_kv [--clients=4] [--ops=6]
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "api/rvma.h"
#include "cluster/cluster.hpp"
#include "common/cli.hpp"

namespace {

constexpr int64_t kRecord = 64;           // one fixed-size record per epoch
constexpr uint64_t kReplyBase = 0x5EED0000;  // + client node id

struct Record {
  uint32_t client = 0;
  uint32_t op = 0;
  char text[kRecord - 8] = {};
};
static_assert(sizeof(Record) == kRecord);

std::string text_of(const Record& r) {
  return std::string(r.text, strnlen(r.text, sizeof r.text));
}

struct Server {
  rvma_ctx ctx = nullptr;
  rvma_win mailbox = nullptr;
  std::vector<Record> pool;        // posted request buffers, reposted on use
  std::vector<Record> reply_slot;  // one in-flight reply per client
  std::map<std::string, std::string> store;
  int served = 0;
};

struct Client {
  rvma_ctx ctx = nullptr;
  rvma_win reply_win = nullptr;
  Record req;    // request slot, reused only after the reply (closed loop)
  Record reply;  // reply landing buffer
  int node = 0;
  int next_op = 0;
  int ops = 0;
  int verified = 0;
};

void issue(Client* c);

void on_request(void* arg, void* buf, int64_t) {
  auto* s = static_cast<Server*>(arg);
  auto* req = static_cast<Record*>(buf);
  const std::string text = text_of(*req);
  Record& out = s->reply_slot[req->client];
  out.client = req->client;
  out.op = req->op;
  std::string reply;
  if (text.rfind("SET ", 0) == 0) {
    const auto space = text.find(' ', 4);
    s->store[text.substr(4, space - 4)] = text.substr(space + 1);
    reply = "OK";
  } else {
    const auto it = s->store.find(text.substr(4));
    reply = it == s->store.end() ? "NIL" : it->second;
  }
  std::memset(out.text, 0, sizeof out.text);
  std::memcpy(out.text, reply.data(), reply.size());
  ++s->served;
  // Recycle the consumed request buffer, then answer straight into the
  // client's reply window — no connection, no per-client server state
  // beyond the one reply slot.
  rvma_post_buffer(s->mailbox, req, kRecord, nullptr);
  rvma_put(s->ctx, &out, /*proc=*/static_cast<int32_t>(req->client),
           kReplyBase + req->client, kRecord);
}

void on_reply(void* arg, void* buf, int64_t) {
  auto* c = static_cast<Client*>(arg);
  const auto* r = static_cast<const Record*>(buf);
  const std::string want =
      r->op % 2 == 0 ? "OK" : "v" + std::to_string(c->node);
  if (text_of(*r) == want) ++c->verified;
  rvma_post_buffer(c->reply_win, &c->reply, kRecord, nullptr);
  issue(c);
}

void issue(Client* c) {
  if (c->next_op >= c->ops) return;
  const int op = c->next_op++;
  const std::string key =
      "k" + std::to_string(c->node) + "_" + std::to_string(op / 2);
  const std::string text =
      op % 2 == 0 ? "SET " + key + " v" + std::to_string(c->node)
                  : "GET " + key;
  c->req.client = static_cast<uint32_t>(c->node);
  c->req.op = static_cast<uint32_t>(op);
  std::memset(c->req.text, 0, sizeof c->req.text);
  std::memcpy(c->req.text, text.data(), text.size());
  // Any unknown vaddr routes to the server's catch-all mailbox.
  rvma_put(c->ctx, &c->req, /*proc=*/0, /*virtual_addr=*/0x44D0DEAD,
           kRecord);
}

}  // namespace

int main(int argc, char** argv) {
  rvma::Cli cli(argc, argv);
  const int clients = static_cast<int>(cli.get_int("clients", 4));
  const int ops = static_cast<int>(cli.get_int("ops", 6));
  for (const auto& key : cli.unconsumed()) {
    std::fprintf(stderr, "unknown option --%s\n", key.c_str());
    return 2;
  }

  rvma::net::NetworkConfig net_cfg;
  net_cfg.topology = rvma::net::TopologyKind::kFatTree;
  net_cfg.nodes_hint = clients + 1;
  rvma::cluster::Cluster cluster(net_cfg, rvma::nic::NicParams{});

  // ---- server (node 0): catch-all mailbox + the store.
  Server server;
  server.ctx = rvma_initialize(&cluster, 0);
  server.mailbox = rvma_init_catch_all(server.ctx, kRecord,
                                       RVMA_EPOCH_BYTES);
  server.pool.resize(static_cast<std::size_t>(clients) + 4);
  server.reply_slot.resize(static_cast<std::size_t>(clients) + 1);
  for (Record& r : server.pool)
    rvma_post_buffer(server.mailbox, &r, kRecord, nullptr);
  rvma_win_observe(server.mailbox, on_request, &server);

  // ---- clients (nodes 1..clients): reply window + closed-loop ops.
  std::vector<Client> cs(static_cast<std::size_t>(clients));
  for (int c = 1; c <= clients; ++c) {
    Client& cl = cs[static_cast<std::size_t>(c - 1)];
    cl.node = c;
    cl.ops = ops;
    cl.ctx = rvma_initialize(&cluster, c);
    cl.reply_win = rvma_init_window(cl.ctx, kReplyBase + c, nullptr, kRecord,
                                    RVMA_EPOCH_BYTES);
    rvma_post_buffer(cl.reply_win, &cl.reply, kRecord, nullptr);
    rvma_win_observe(cl.reply_win, on_reply, &cl);
    issue(&cl);
  }

  rvma_sim_run(&cluster);

  int verified = 0;
  for (const Client& cl : cs) verified += cl.verified;
  std::printf("sockets_kv: %d clients x %d ops over the rvma.h catch-all "
              "mailbox\n",
              clients, ops);
  std::printf("store size: %zu keys; replies verified: %d/%d; simulated "
              "time %s\n",
              server.store.size(), verified, server.served,
              rvma::format_time(cluster.engine().now()).c_str());
  const bool success =
      verified == server.served && server.served == clients * ops;
  std::printf("result: %s\n", success ? "OK" : "MISMATCH");
  for (Client& cl : cs) rvma_finalize(cl.ctx);
  rvma_finalize(server.ctx);
  return success ? 0 : 1;
}
