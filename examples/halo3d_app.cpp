// halo3d_app: a miniature 3-D stencil application on the simulated
// cluster, exchanging real halo data through RVMA windows every iteration.
//
// Unlike the timing-only motif bench (bench/fig8_halo3d), this example
// moves actual bytes: each rank owns a block of doubles, sends its +x/-x
// face to neighbors, and verifies the received halos — demonstrating the
// library as an application would use it (windows per neighbor, a bucket
// of buffers deep enough for all iterations, threshold completion).
//
// Usage: halo3d_app [--px=4] [--iters=3] [--nx=16]
#include <cstdio>
#include <memory>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/cli.hpp"
#include "core/endpoint.hpp"

using namespace rvma;

namespace {

struct Rank {
  std::unique_ptr<core::RvmaEndpoint> ep;
  std::vector<double> field;                        // local block
  std::vector<std::vector<double>> halo_from_left;  // per-iteration buffers
  std::vector<std::vector<double>> halo_from_right;
  // Per-iteration send snapshots: RVMA (like RDMA) requires the source
  // buffer to stay valid until the transfer is on the wire, so faces are
  // snapshotted rather than sent from the mutating field.
  std::vector<std::vector<double>> tx_face;
};

constexpr std::uint64_t kLeftMailbox = 0x100;   // receives from left peer
constexpr std::uint64_t kRightMailbox = 0x200;  // receives from right peer

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int px = static_cast<int>(cli.get_int("px", 4));
  const int iters = static_cast<int>(cli.get_int("iters", 3));
  const int nx = static_cast<int>(cli.get_int("nx", 16));
  for (const auto& key : cli.unconsumed()) {
    std::fprintf(stderr, "unknown option --%s\n", key.c_str());
    return 2;
  }
  const std::uint64_t face_bytes = sizeof(double) * nx * nx;

  net::NetworkConfig net_cfg;
  net_cfg.topology = net::TopologyKind::kTorus3D;
  net_cfg.routing = net::Routing::kAdaptive;
  net_cfg.nodes_hint = px;
  cluster::Cluster cluster(net_cfg, nic::NicParams{});
  if (cluster.num_nodes() < px) {
    std::fprintf(stderr, "topology too small\n");
    return 2;
  }

  // Set up ranks: field data and one mailbox per incoming direction, with
  // a bucket deep enough for every iteration (no per-iteration reposting
  // on the critical path).
  std::vector<Rank> ranks(px);
  for (int r = 0; r < px; ++r) {
    Rank& rank = ranks[r];
    rank.ep = std::make_unique<core::RvmaEndpoint>(cluster.nic(r),
                                                   core::RvmaParams{});
    rank.field.assign(static_cast<std::size_t>(nx) * nx * nx,
                      static_cast<double>(r));
    rank.ep->init_window(kLeftMailbox, static_cast<std::int64_t>(face_bytes),
                         core::EpochType::kBytes);
    rank.ep->init_window(kRightMailbox, static_cast<std::int64_t>(face_bytes),
                         core::EpochType::kBytes);
    rank.halo_from_left.assign(iters, std::vector<double>(nx * nx, -1.0));
    rank.halo_from_right.assign(iters, std::vector<double>(nx * nx, -1.0));
    rank.tx_face.assign(iters, std::vector<double>(nx * nx, 0.0));
    for (int it = 0; it < iters; ++it) {
      if (r > 0) {
        rank.ep->post_buffer(
            kLeftMailbox,
            std::span<std::byte>(
                reinterpret_cast<std::byte*>(rank.halo_from_left[it].data()),
                face_bytes),
            nullptr, nullptr);
      }
      if (r < px - 1) {
        rank.ep->post_buffer(
            kRightMailbox,
            std::span<std::byte>(
                reinterpret_cast<std::byte*>(rank.halo_from_right[it].data()),
                face_bytes),
            nullptr, nullptr);
      }
    }
  }

  // Drive the iterations: each rank sends faces, waits for both halos via
  // completion observers, "computes" (updates its field), repeats.
  struct Progress {
    int iter = 0;
    int halos_pending = 0;
  };
  std::vector<Progress> progress(px);

  std::function<void(int)> start_iteration = [&](int r) {
    Rank& rank = ranks[r];
    Progress& pg = progress[r];
    if (pg.iter >= iters) return;
    pg.halos_pending = (r > 0 ? 1 : 0) + (r < px - 1 ? 1 : 0);
    // "Compute", then snapshot the face value (this rank's id + iteration,
    // so receivers can verify) and send it to both neighbors.
    rank.field.assign(rank.field.size(), r + 0.001 * pg.iter);
    std::vector<double>& face = rank.tx_face[pg.iter];
    face.assign(face.size(), r + 0.001 * pg.iter);
    if (r > 0) {
      rank.ep->put(r - 1, kRightMailbox, 0,
                   reinterpret_cast<const std::byte*>(face.data()),
                   face_bytes);
    }
    if (r < px - 1) {
      rank.ep->put(r + 1, kLeftMailbox, 0,
                   reinterpret_cast<const std::byte*>(face.data()),
                   face_bytes);
    }
    if (pg.halos_pending == 0) {
      ++pg.iter;
      cluster.engine().schedule(0, [&, r] { start_iteration(r); });
    }
  };

  auto on_halo = [&](int r) {
    Progress& pg = progress[r];
    if (--pg.halos_pending == 0) {
      ++pg.iter;
      start_iteration(r);
    }
  };
  for (int r = 0; r < px; ++r) {
    ranks[r].ep->set_completion_observer(
        kLeftMailbox, [&, r](void*, std::int64_t) { on_halo(r); });
    ranks[r].ep->set_completion_observer(
        kRightMailbox, [&, r](void*, std::int64_t) { on_halo(r); });
    cluster.engine().schedule(0, [&, r] { start_iteration(r); });
  }
  cluster.engine().run();

  // Verify every halo buffer holds the neighbor's per-iteration signature.
  int errors = 0;
  for (int r = 0; r < px; ++r) {
    for (int it = 0; it < iters; ++it) {
      if (r > 0 && ranks[r].halo_from_left[it][0] != (r - 1) + 0.001 * it) {
        ++errors;
      }
      if (r < px - 1 &&
          ranks[r].halo_from_right[it][0] != (r + 1) + 0.001 * it) {
        ++errors;
      }
    }
  }
  std::printf("halo3d_app: %d ranks, %d iterations, face %llu bytes\n", px,
              iters, static_cast<unsigned long long>(face_bytes));
  std::printf("simulated time: %s, halo errors: %d\n",
              format_time(cluster.engine().now()).c_str(), errors);
  return errors == 0 ? 0 : 1;
}
