// fault_tolerance: the paper's §IV-F scenario — hardware-level rollback of
// communication buffers after a mid-epoch failure (the MPIX_Rewind sketch).
//
// A "timestep simulation" receives one state buffer per timestep into an
// RVMA mailbox. Timestep 4's sender dies halfway through the transfer.
// Because completed epochs retire into the mailbox's buffer ring, the
// application asks the NIC for the previous epoch's buffer address and
// resumes from the last consistent timestep — something impossible with
// classic RDMA, where the half-written buffer is the only copy.
//
// Build & run:  ./build/examples/fault_tolerance
#include <cstdio>
#include <vector>

#include "cluster/cluster.hpp"
#include "core/endpoint.hpp"

using namespace rvma;

namespace {
constexpr std::uint64_t kStateMailbox = 0x7777;
constexpr std::uint64_t kStateBytes = 8192;
constexpr int kTimesteps = 4;  // the 4th one fails
}  // namespace

int main() {
  net::NetworkConfig net_cfg;
  net_cfg.topology = net::TopologyKind::kStar;
  net_cfg.nodes_hint = 2;
  cluster::Cluster cluster(net_cfg, nic::NicParams{});
  core::RvmaEndpoint compute_node(cluster.nic(0), core::RvmaParams{});
  core::RvmaEndpoint checkpoint_node(cluster.nic(1), core::RvmaParams{});

  core::Window window = checkpoint_node.init_window(
      kStateMailbox, kStateBytes, core::EpochType::kBytes);
  // One buffer per timestep: the mailbox's "bucket" doubles as epoch
  // history for rollback.
  std::vector<std::vector<std::byte>> epoch_buffers(
      kTimesteps, std::vector<std::byte>(kStateBytes));
  for (auto& buf : epoch_buffers) {
    if (!ok(window.post(buf, nullptr))) {
      std::fprintf(stderr, "post failed\n");
      return 1;
    }
  }
  window.notify_wait([&](void*, std::int64_t) {});

  // Timesteps 1..3 complete; timestep 4 fails after half the bytes.
  std::vector<std::vector<std::byte>> states;
  for (int t = 0; t < kTimesteps; ++t) {
    states.emplace_back(kStateBytes, static_cast<std::byte>(0x10 * (t + 1)));
  }
  for (int t = 0; t < kTimesteps - 1; ++t) {
    compute_node.put(1, kStateMailbox, 0, states[t].data(), kStateBytes);
  }
  cluster.engine().run();
  std::printf("timesteps completed: epoch=%lld (expect %d)\n",
              static_cast<long long>(window.epoch()), kTimesteps - 1);

  // The failing transfer: only half the state arrives, then the node dies.
  compute_node.put(1, kStateMailbox, 0, states[3].data(), kStateBytes / 2);
  cluster.engine().run();
  std::printf("after failure: epoch=%lld (timestep 4 incomplete -> epoch "
              "did not advance)\n",
              static_cast<long long>(window.epoch()));

  // Recovery: MPIX_Rewind-style — fetch the last consistent epoch's buffer
  // straight from the NIC's retired-buffer ring.
  void* recovered = nullptr;
  std::int64_t recovered_len = 0;
  const Status st = window.rewind(1, &recovered, &recovered_len);
  if (!ok(st)) {
    std::fprintf(stderr, "rewind failed: %s\n",
                 std::string(to_string(st)).c_str());
    return 1;
  }
  const auto* bytes = static_cast<const std::byte*>(recovered);
  const bool consistent =
      recovered == epoch_buffers[2].data() &&
      recovered_len == static_cast<std::int64_t>(kStateBytes) &&
      bytes[0] == std::byte{0x30} && bytes[kStateBytes - 1] == std::byte{0x30};
  std::printf("rewind(1): buffer=%p length=%lld -> timestep-3 state %s\n",
              recovered, static_cast<long long>(recovered_len),
              consistent ? "recovered intact" : "MISMATCH");

  // Deeper history is also available, bounded by the retire ring depth.
  for (int back = 2; back <= 3; ++back) {
    void* buf = nullptr;
    std::int64_t len = 0;
    if (ok(window.rewind(back, &buf, &len))) {
      std::printf("rewind(%d): buffer=%p first_byte=0x%02x\n", back, buf,
                  std::to_integer<int>(static_cast<const std::byte*>(buf)[0]));
    }
  }
  return consistent ? 0 : 1;
}
