// rma_stencil: a 1-D Jacobi stencil written against the MPI-style RMA
// layer (paper §IV-E/F) — puts between fences, epochs per timestep, and
// MPIX_Rewind-style rollback after a failed timestep.
//
// Each rank owns a strip of cells plus two ghost cells living in its RMA
// window; every timestep the neighbors put boundary values into the
// window, all ranks fence, then compute. After several good timesteps one
// rank "fails" mid-epoch; the survivors rewind their windows to the last
// fenced epoch and the run resumes from consistent state.
//
// Usage: rma_stencil [--ranks=4] [--cells=64] [--steps=4]
#include <cstdio>
#include <memory>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/cli.hpp"
#include "rma/rma_window.hpp"

using namespace rvma;

namespace {

// Window layout per rank: [ghost_left][cells...][ghost_right], doubles.
std::uint64_t window_bytes(int cells) {
  return sizeof(double) * static_cast<std::uint64_t>(cells + 2);
}

double* cells_of(rma::RmaWindow& window, int rank) {
  return reinterpret_cast<double*>(window.data(rank));
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int ranks = static_cast<int>(cli.get_int("ranks", 4));
  const int cells = static_cast<int>(cli.get_int("cells", 64));
  const int steps = static_cast<int>(cli.get_int("steps", 4));
  for (const auto& key : cli.unconsumed()) {
    std::fprintf(stderr, "unknown option --%s\n", key.c_str());
    return 2;
  }

  net::NetworkConfig net_cfg;
  net_cfg.topology = net::TopologyKind::kTorus3D;
  net_cfg.nodes_hint = ranks;
  cluster::Cluster cluster(net_cfg, nic::NicParams{});

  std::vector<std::unique_ptr<core::RvmaEndpoint>> eps;
  std::vector<core::RvmaEndpoint*> raw;
  for (int r = 0; r < ranks; ++r) {
    eps.push_back(std::make_unique<core::RvmaEndpoint>(cluster.nic(r),
                                                       core::RvmaParams{}));
    raw.push_back(eps.back().get());
  }
  rma::RmaWindow window(raw, 0x57E7C11,
                        rma::RmaWindow::Config{window_bytes(cells), 4, true});

  // Initialize: rank r's strip is all r+1 (stored via local window writes).
  for (int r = 0; r < ranks; ++r) {
    double* w = cells_of(window, r);
    for (int c = 0; c <= cells + 1; ++c) w[c] = r + 1.0;
  }

  auto exchange_and_fence = [&](int exclude_rank) {
    for (int r = 0; r < ranks; ++r) {
      if (r == exclude_rank) continue;
      const double* w = cells_of(window, r);
      // Push my boundary cells into the neighbors' ghost slots.
      if (r > 0) {
        window.put(r, r - 1, sizeof(double) * (cells + 1),
                   reinterpret_cast<const std::byte*>(&w[1]), sizeof(double));
      }
      if (r < ranks - 1) {
        window.put(r, r + 1, 0,
                   reinterpret_cast<const std::byte*>(&w[cells]),
                   sizeof(double));
      }
    }
    int fenced = 0;
    window.fence([&](int) { ++fenced; });
    cluster.engine().run();
    return fenced;
  };

  auto compute = [&] {
    for (int r = 0; r < ranks; ++r) {
      double* w = cells_of(window, r);
      std::vector<double> next(cells + 2);
      for (int c = 1; c <= cells; ++c) {
        next[c] = (w[c - 1] + w[c] + w[c + 1]) / 3.0;
      }
      for (int c = 1; c <= cells; ++c) w[c] = next[c];
    }
  };

  for (int s = 0; s < steps; ++s) {
    const int fenced = exchange_and_fence(-1);
    compute();
    std::printf("timestep %d fenced by %d/%d ranks, epoch=%lld, "
                "rank0 boundary=%.4f\n",
                s, fenced, ranks, static_cast<long long>(window.epoch()),
                cells_of(window, 0)[cells]);
  }
  const double checkpoint_value = cells_of(window, 1)[1];

  // A failing timestep: rank 0 dies before contributing its put; the
  // fence cannot complete (its records never arrive) — detect via a
  // bounded wait, then roll back.
  std::printf("\ninjecting failure: rank 0 dies mid-timestep\n");
  for (int r = 1; r < ranks; ++r) {
    const double* w = cells_of(window, r);
    if (r < ranks - 1) {
      window.put(r, r + 1, 0, reinterpret_cast<const std::byte*>(&w[cells]),
                 sizeof(double));
    }
  }
  cluster.engine().run();  // partial puts land; no fence is attempted

  // Recovery: every survivor rewinds to the last fenced epoch image.
  int recovered = 0;
  for (int r = 1; r < ranks; ++r) {
    const std::byte* image = nullptr;
    std::int64_t bytes = 0;
    if (ok(window.rewind(r, 1, &image, &bytes))) ++recovered;
  }
  std::printf("rewind(1) succeeded on %d/%d survivors; rank1 cell[1] "
              "rollback view=%.4f (current=%.4f)\n",
              recovered, ranks - 1, checkpoint_value, cells_of(window, 1)[1]);

  const bool success = recovered == ranks - 1;
  std::printf("rma_stencil: %s\n", success ? "RECOVERED" : "FAILED");
  return success ? 0 : 1;
}
