// incast_server: many-to-one service on RVMA — the client/server pattern
// the paper's abstract says RDMA handles badly (per-client exclusive
// regions, unbounded reservations) and RVMA handles naturally (one mailbox,
// receiver-managed bucket of buffers, no per-client state).
//
// N clients each send `--requests` records to one server mailbox. The
// server posts a modest rolling bucket and tops it up locally as records
// complete; clients never negotiate or hold server resources. Late
// clients whose records find no posted buffer are NACKed, and the server
// reports its drop statistics — receiver-side resource management in
// action.
//
// Usage: incast_server [--clients=12] [--requests=6] [--record=4096]
//                      [--bucket=8]
#include <cstdio>
#include <memory>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/cli.hpp"
#include "core/endpoint.hpp"

using namespace rvma;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int clients = static_cast<int>(cli.get_int("clients", 12));
  const int requests = static_cast<int>(cli.get_int("requests", 6));
  const std::uint64_t record = cli.get_int("record", 4096);
  const int bucket = static_cast<int>(cli.get_int("bucket", 8));
  for (const auto& key : cli.unconsumed()) {
    std::fprintf(stderr, "unknown option --%s\n", key.c_str());
    return 2;
  }

  net::NetworkConfig net_cfg;
  net_cfg.topology = net::TopologyKind::kFatTree;
  net_cfg.routing = net::Routing::kAdaptive;
  net_cfg.nodes_hint = clients + 1;
  cluster::Cluster cluster(net_cfg, nic::NicParams{});
  const int server_node = 0;

  core::RvmaEndpoint server(cluster.nic(server_node), core::RvmaParams{});
  std::vector<std::unique_ptr<core::RvmaEndpoint>> client_eps;
  for (int c = 1; c <= clients; ++c) {
    client_eps.push_back(std::make_unique<core::RvmaEndpoint>(
        cluster.nic(c), core::RvmaParams{}));
  }

  // The service mailbox: every record is one epoch (byte threshold =
  // record size). The bucket is topped up locally on each completion.
  constexpr std::uint64_t kService = 0x5E41CE;
  core::Window service =
      server.init_window(kService, static_cast<std::int64_t>(record),
                         core::EpochType::kBytes);
  const int total_records = clients * requests;
  std::vector<std::vector<std::byte>> pool(
      total_records, std::vector<std::byte>(record));
  int next_pool = 0;
  for (int i = 0; i < bucket && next_pool < total_records; ++i) {
    service.post(pool[next_pool++], nullptr);
  }

  std::uint64_t served = 0;
  std::vector<std::uint64_t> per_client(clients + 1, 0);
  server.set_completion_observer(kService, [&](void* buf, std::int64_t len) {
    ++served;
    const auto* data = static_cast<const std::byte*>(buf);
    const int client = std::to_integer<int>(data[0]);
    if (client >= 1 && client <= clients && len > 0) ++per_client[client];
    if (next_pool < total_records) {
      service.post(pool[next_pool++], nullptr);  // local top-up, no network
    }
  });

  // Clients fire their records with no setup handshake at all.
  std::vector<std::vector<std::byte>> payloads;
  payloads.reserve(static_cast<std::size_t>(clients) * requests);
  std::uint64_t nacks = 0;
  for (int c = 1; c <= clients; ++c) {
    client_eps[c - 1]->on_nack([&](std::uint64_t, Status) { ++nacks; });
    for (int q = 0; q < requests; ++q) {
      payloads.emplace_back(record, static_cast<std::byte>(c));
      auto& payload = payloads.back();
      // Stagger each client's requests slightly.
      cluster.engine().schedule(
          static_cast<Time>(q) * 2 * kMicrosecond + c * 100 * kNanosecond,
          [&, c] {
            client_eps[c - 1]->put(server_node, kService, 0, payload.data(),
                                   record);
          });
    }
  }
  cluster.engine().run();

  std::printf("incast_server: %d clients x %d requests of %llu B "
              "(bucket depth %d)\n",
              clients, requests, static_cast<unsigned long long>(record),
              bucket);
  std::printf("served %llu/%d records in %s; NACKs to clients: %llu, "
              "drops(no buffer): %llu\n",
              static_cast<unsigned long long>(served), total_records,
              format_time(cluster.engine().now()).c_str(),
              static_cast<unsigned long long>(nacks),
              static_cast<unsigned long long>(
                  server.stats().drops_no_buffer));
  for (int c = 1; c <= clients; ++c) {
    if (per_client[c] != static_cast<std::uint64_t>(requests)) {
      std::printf("  client %d: %llu/%d records\n", c,
                  static_cast<unsigned long long>(per_client[c]), requests);
    }
  }
  return served == static_cast<std::uint64_t>(total_records) ? 0 : 1;
}
