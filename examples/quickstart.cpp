// Quickstart: the smallest complete RVMA program, on the public rvma.h
// library surface.
//
// Simulates two nodes on one switch. The target opens a context, creates
// a mailbox window, posts a receive buffer with a completion cache line;
// the initiator fires an rvma_put at the mailbox's virtual address — no
// handshake, no remote buffer bookkeeping — and the NIC completes the
// buffer when the byte threshold is reached, writing (buffer head,
// length) to the notification line.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <cstring>
#include <vector>

#include "api/rvma.h"
#include "cluster/cluster.hpp"

int main() {
  // 1. A simulated 2-node cluster (one switch, 100 Gbps links). The
  //    cluster is the only C++ object here; everything RVMA stays on the
  //    C header.
  rvma::cluster::Cluster cluster(
      rvma::cluster::ClusterBuilder()
          .topology(rvma::net::TopologyKind::kStar)
          .nodes(2)
          .link_bandwidth(rvma::Bandwidth::gbps(100)));

  rvma_ctx initiator = rvma_initialize(&cluster, 0);
  rvma_ctx target = rvma_initialize(&cluster, 1);

  // 2. Target: a window at mailbox vaddr 0x11FF0011, completing after 64
  //    bytes, plus one posted buffer and its notification cache line.
  constexpr uint64_t kMailbox = 0x11FF0011;
  uint64_t key = 0;
  rvma_win window = rvma_init_window(target, kMailbox, &key,
                                     /*epoch_threshold=*/64,
                                     RVMA_EPOCH_BYTES);
  if (window == nullptr) {
    std::fprintf(stderr, "init_window failed\n");
    return 1;
  }

  std::vector<unsigned char> buffer(64, 0);
  alignas(64) void* notification[8] = {};  // word 0: buf head, word 1: len
  if (rvma_post_buffer(window, buffer.data(), 64, &notification[0]) !=
      RVMA_SUCCESS) {
    std::fprintf(stderr, "post_buffer failed\n");
    return 1;
  }

  // 3. Wake-on-completion (Monitor/MWait style).
  rvma_win_wait(
      window,
      [](void*, void* buf, int64_t len) {
        std::printf("completion: buffer=%p length=%lld payload=\"%s\"\n",
                    buf, static_cast<long long>(len),
                    reinterpret_cast<const char*>(buf));
      },
      nullptr);

  // 4. Initiator: put 64 bytes at the virtual address. Note what is NOT
  //    here: no address exchange, no registration, no completion message.
  char message[64] = "hello from node 0 via Remote Virtual Memory Access";
  rvma_put(initiator, message, /*proc=*/1, kMailbox, sizeof message);

  rvma_sim_run(&cluster);

  std::printf("epoch advanced to %lld; completions on mailbox: %llu\n",
              static_cast<long long>(rvma_win_get_epoch(window)),
              static_cast<unsigned long long>(rvma_win_completions(window)));
  const bool data_ok =
      std::memcmp(buffer.data(), message, sizeof message) == 0 &&
      rvma_flush(initiator, RVMA_ALL_PROCS) == RVMA_SUCCESS;
  std::printf("data integrity: %s\n", data_ok ? "OK" : "CORRUPT");
  const bool notified = notification[0] == buffer.data() &&
                        reinterpret_cast<int64_t*>(notification)[1] == 64;
  rvma_finalize(initiator);
  rvma_finalize(target);
  return data_ok && notified ? 0 : 1;
}
