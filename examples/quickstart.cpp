// Quickstart: the smallest complete RVMA program.
//
// Simulates two nodes on one switch. The target creates a mailbox window,
// posts a receive buffer with a completion pointer; the initiator fires an
// RVMA_Put at the mailbox's virtual address — no handshake, no remote
// buffer bookkeeping — and the NIC completes the buffer when the byte
// threshold is reached, writing (buffer head, length) to the notification
// cache line.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <cstring>
#include <vector>

#include "cluster/cluster.hpp"
#include "core/endpoint.hpp"

using namespace rvma;

int main() {
  // 1. A simulated 2-node cluster (one switch, 100 Gbps links).
  cluster::Cluster cluster(cluster::ClusterBuilder()
                               .topology(net::TopologyKind::kStar)
                               .nodes(2)
                               .link_bandwidth(Bandwidth::gbps(100)));

  core::RvmaEndpoint initiator(cluster.nic(0), core::RvmaParams{});
  core::RvmaEndpoint target(cluster.nic(1), core::RvmaParams{});

  // 2. Target: a window at mailbox vaddr 0x11FF0011, completing after 64
  //    bytes, plus one posted buffer and its notification cache line.
  constexpr std::uint64_t kMailbox = 0x11FF0011;
  constexpr std::int64_t kThreshold = 64;
  core::Window window =
      target.init_window(kMailbox, kThreshold, core::EpochType::kBytes);

  std::vector<std::byte> buffer(64, std::byte{0});
  void* notification = nullptr;   // completion pointer target
  std::int64_t length = -1;       // completed-length target
  if (!ok(window.post(buffer, &notification, &length))) {
    std::fprintf(stderr, "post_buffer failed\n");
    return 1;
  }

  // 3. Wake-on-completion (Monitor/MWait style).
  window.notify_wait([&](void* buf, std::int64_t len) {
    std::printf("[%s] completion: buffer=%p length=%lld payload=\"%s\"\n",
                format_time(cluster.engine().now()).c_str(), buf,
                static_cast<long long>(len),
                reinterpret_cast<const char*>(buf));
  });

  // 4. Initiator: put 64 bytes at the virtual address. Note what is NOT
  //    here: no address exchange, no registration, no completion message.
  char message[64] = "hello from node 0 via Remote Virtual Memory Access";
  initiator.put(/*dst=*/1, kMailbox, /*offset=*/0,
                reinterpret_cast<const std::byte*>(message), sizeof message);

  cluster.engine().run();

  std::printf("epoch advanced to %lld; completions on mailbox: %llu\n",
              static_cast<long long>(window.epoch()),
              static_cast<unsigned long long>(window.completions()));
  const bool data_ok =
      std::memcmp(buffer.data(), message, sizeof message) == 0;
  std::printf("data integrity: %s\n", data_ok ? "OK" : "CORRUPT");
  return data_ok && notification == buffer.data() ? 0 : 1;
}
