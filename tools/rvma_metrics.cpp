// rvma_metrics: analysis CLI for the metrics documents every bench emits
// via --metrics=<path> (schema rvma-metrics-v1), plus trace triage.
//
// Subcommands:
//   summarize <file>                 counters, gauges, histogram
//                                    percentile tables, timeseries
//                                    overview
//   diff <a> <b> [--rel-tol=X]       side-by-side comparison; prints every
//                                    flagged instrument, exits 1 when any
//                                    difference exceeds the tolerance
//   check <file> [name...]           validate schema + required
//        [--need-histogram]          instruments; exit code = number of
//        [--need-timeseries]         failed checks (CI gate)
//   trace <trace.jsonl>              per-engine trace analysis
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "obs/metrics_io.hpp"
#include "obs/trace_analysis.hpp"

namespace {

using namespace rvma;

int usage() {
  std::fprintf(stderr,
               "usage: rvma_metrics <command> ...\n"
               "  summarize <file>\n"
               "  diff <a> <b> [--rel-tol=X]\n"
               "  check <file> [name...] [--need-histogram] "
               "[--need-timeseries]\n"
               "  trace <trace.jsonl>\n");
  return 2;
}

bool load(const std::string& path, obs::MetricsDoc* doc) {
  std::string error;
  if (!obs::read_metrics_file(path, doc, &error)) {
    std::fprintf(stderr, "rvma_metrics: %s\n", error.c_str());
    return false;
  }
  return true;
}

int cmd_summarize(const std::vector<std::string>& args) {
  if (args.size() != 1) return usage();
  obs::MetricsDoc doc;
  if (!load(args[0], &doc)) return 2;
  std::printf("metrics: %s\n", args[0].c_str());
  obs::print_metrics_summary(doc, stdout);
  return 0;
}

int cmd_diff(const std::vector<std::string>& args) {
  obs::DiffOptions opts;
  std::vector<std::string> files;
  for (const std::string& arg : args) {
    if (arg.rfind("--rel-tol=", 0) == 0) {
      opts.rel_tol = std::strtod(arg.c_str() + 10, nullptr);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.size() != 2) return usage();
  obs::MetricsDoc a, b;
  if (!load(files[0], &a) || !load(files[1], &b)) return 2;
  std::printf("diff: %s vs %s\n", files[0].c_str(), files[1].c_str());
  const int flagged = obs::print_metrics_diff(a, b, opts, stdout);
  return flagged == 0 ? 0 : 1;
}

int cmd_check(const std::vector<std::string>& args) {
  obs::CheckOptions opts;
  std::string file;
  for (const std::string& arg : args) {
    if (arg == "--need-histogram") {
      opts.need_histogram = true;
    } else if (arg == "--need-timeseries") {
      opts.need_timeseries = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return 2;
    } else if (file.empty()) {
      file = arg;
    } else {
      opts.required.push_back(arg);
    }
  }
  if (file.empty()) return usage();
  obs::MetricsDoc doc;
  if (!load(file, &doc)) return 2;
  const int failures = obs::check_metrics_doc(doc, opts, stdout);
  if (failures == 0) {
    std::printf("%s: OK (%zu counters, %zu gauges, %zu histograms, "
                "%zu timeseries)\n",
                file.c_str(), doc.totals.counters.size(),
                doc.totals.gauges.size(), doc.totals.histograms.size(),
                doc.timeseries.size());
  }
  return failures;
}

int cmd_trace(const std::vector<std::string>& args) {
  if (args.size() != 1) return usage();
  obs::TraceAnalysis analysis;
  std::string error;
  if (!obs::analyze_trace_file(args[0], &analysis, &error)) {
    std::fprintf(stderr, "rvma_metrics: %s\n", error.c_str());
    return 2;
  }
  obs::print_trace_analysis(analysis, args[0], stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const std::vector<std::string> args(argv + 2, argv + argc);
  if (cmd == "summarize") return cmd_summarize(args);
  if (cmd == "diff") return cmd_diff(args);
  if (cmd == "check") return cmd_check(args);
  if (cmd == "trace") return cmd_trace(args);
  std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
  return usage();
}
