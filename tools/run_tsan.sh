#!/usr/bin/env sh
# Build the concurrency-sensitive tests under ThreadSanitizer and run
# them. Any reported data race fails the script (TSan exits non-zero).
#
# Covers the parallel sweep machinery: the SweepExecutor pool itself,
# the jobs=N vs jobs=1 grid determinism (which exercises concurrent
# Cluster/Engine runs and per-run trace sinks), the fabric tests
# (static next-hop cache), the NIC admission/drain path, and the
# express-exactness tests (whose mini-grid runs express and hop-by-hop
# fabrics concurrently across worker threads — the pooled non-atomic
# message refcount must stay engine-local), the scenario-layer tests
# (registry materialization plus the rvma_run grid replay, which fans
# cells out over the executor), and the PDES tests (the ShardedEngine's
# window barriers, cross-shard SPSC channels, and the windowed-vs-serial
# exactness runs, which exercise the full multi-threaded shard path),
# the lookahead-matrix tests (per-destination windows, unreachable-pair
# handling, and windowed-vs-serial identity at K in {2,3,5}),
# and the flight-recorder tests (per-shard rings attached to windowed
# engines plus the per-shard buffered-tracer merge in ScenarioRunner),
# and the rvma.h API tests (API-motif contexts driven from shard threads:
# per-rank endpoint state, cross-shard puts/gets, and the serial-vs-
# sharded identity runs for remote_paging / kv_store / alltoall).
#
# Usage: tools/run_tsan.sh [build-dir]
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-tsan"}

cmake -B "$build_dir" -S "$repo_root" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -DRVMA_SANITIZE=thread
cmake --build "$build_dir" --target \
  test_sweep_executor test_sweep_determinism test_fabric_features \
  test_routing_algebra test_express_exactness test_nic test_obs \
  test_scenario test_pdes test_pdes_matrix test_flight_recorder \
  test_api -j "$(nproc)"

for test in test_sweep_executor test_sweep_determinism test_fabric_features \
  test_routing_algebra test_express_exactness test_nic test_obs \
  test_scenario test_pdes test_pdes_matrix test_flight_recorder test_api
do
  echo "== tsan: $test =="
  "$build_dir/tests/$test"
done
echo "tsan: all clean"
