// rvma_trace — decode and analyse flight-recorder ("RVFR1") dumps.
//
// Usage:
//   rvma_trace summarize <dump.rvfr>
//       Per-shard and per-kind record counts, dropped totals, time range.
//   rvma_trace critpath <dump.rvfr>
//       Per-message critical-path breakdown (host / wire / rx / mailbox
//       segments) with p50/p99/max durations and exemplar message ids.
//   rvma_trace timeline <dump.rvfr> [--out=trace.json]
//       Chrome trace-event / Perfetto JSON: one process per shard, one
//       thread track per node. Load at https://ui.perfetto.dev or
//       chrome://tracing. Defaults to stdout.
//
// Dumps come from `rvma_run <scenario> --flight-recorder=<path>` (or the
// fig7/fig8 benches with the same flag). Everything here is offline
// analysis — the recorder itself never perturbs simulation output.
#include <cstdio>
#include <cstring>
#include <string>

#include "common/cli.hpp"
#include "obs/flight_analysis.hpp"
#include "obs/flight_recorder.hpp"

using namespace rvma;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: rvma_trace summarize <dump.rvfr>\n"
               "       rvma_trace critpath  <dump.rvfr>\n"
               "       rvma_trace timeline  <dump.rvfr> [--out=trace.json]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  if (cli.positional().size() != 2) return usage();
  const std::string command = cli.positional()[0];
  const std::string path = cli.positional()[1];
  const std::string out_path = cli.get("out", "");
  for (const auto& key : cli.unconsumed()) {
    std::fprintf(stderr, "unknown option --%s\n", key.c_str());
    return 2;
  }

  obs::FlightDump dump;
  std::string error;
  if (!obs::read_flight_file(path, &dump, &error)) {
    std::fprintf(stderr, "rvma_trace: %s\n", error.c_str());
    return 1;
  }

  if (command == "summarize") {
    std::fputs(obs::format_flight_summary(dump).c_str(), stdout);
    return 0;
  }
  if (command == "critpath") {
    const auto paths = obs::build_message_paths(dump);
    std::fputs(obs::format_critpath(obs::build_critpath(paths)).c_str(),
               stdout);
    return 0;
  }
  if (command == "timeline") {
    const std::string json = obs::perfetto_json(dump);
    if (out_path.empty()) {
      std::fputs(json.c_str(), stdout);
      return 0;
    }
    std::FILE* out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "rvma_trace: cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), out);
    std::fclose(out);
    std::printf("timeline written to %s (%zu bytes, %llu records)\n",
                out_path.c_str(), json.size(),
                static_cast<unsigned long long>(dump.total_records()));
    return 0;
  }
  return usage();
}
