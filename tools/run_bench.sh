#!/usr/bin/env sh
# Build the perf benchmarks in Release mode and run them, writing
# BENCH_engine.json and BENCH_sweep.json at the repo root.
#
# BENCH_sweep.json records the parallel-sweep experiment: fig8_halo3d
# --quick is run serially (--jobs=1) and then with all host cores, the
# printed tables are diffed (they must be byte-identical — the sweep
# executor's determinism contract), and the parallel run's JSON gains a
# speedup_vs_serial field computed from the serial wall-clock.
#
# Both runs also emit --metrics documents; the script asserts they are
# byte-identical (the metrics determinism contract) and gates them
# through `rvma_metrics check` (schema + required instruments +
# histogram + timeseries).
#
# Two more gates protect the express cut-through path (DESIGN.md §8):
# fabric_packets_per_sec must not regress below 0.9x the value recorded
# in the committed BENCH_engine.json, and a fig8 --quick grid run with
# --no-express must produce a byte-identical table and metrics document
# (modulo the engine event counters — fewer events is the whole point).
#
# The flight recorder (DESIGN.md §14) gets the same treatment: arming it
# must leave the table and metrics byte-identical (serial and at
# --par-shards=8), the recorder-armed chain bench must stay within 5% of
# the plain run, and BENCH_engine.json must carry the pdes_profile block
# (per-shard utilization + barrier wait/drain/completion for K=1/2/4/8).
#
# The pdes_windows block gates the lookahead-matrix payoff: the matrix
# must need >= 1.5x fewer barrier rounds than the scalar ablation on the
# 1024-rank sweep gate — a deterministic count, enforced on every host.
#
# Usage: tools/run_bench.sh [build-dir]
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-bench"}

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" --target engine_throughput fig8_halo3d \
  rvma_metrics rvma_run -j "$(nproc)"

# Capture the previously recorded express-path throughput before the
# bench overwrites the file.
recorded_pps=""
if [ -f "$repo_root/BENCH_engine.json" ]; then
  # Last match: the "current" block (the first is the seed baseline).
  recorded_pps=$(sed -n \
    's/.*"fabric_packets_per_sec": \([0-9]*\).*/\1/p' \
    "$repo_root/BENCH_engine.json" | tail -n 1)
fi

"$build_dir/bench/engine_throughput" "$repo_root/BENCH_engine.json"

# --- Express fast-path regression gate ----------------------------------
new_pps=$(sed -n 's/.*"fabric_packets_per_sec": \([0-9]*\).*/\1/p' \
  "$repo_root/BENCH_engine.json" | tail -n 1)
if [ -n "$recorded_pps" ] && [ -n "$new_pps" ]; then
  if ! awk -v new="$new_pps" -v old="$recorded_pps" \
    'BEGIN { exit !(new >= 0.9 * old) }'
  then
    echo "ERROR: fabric_packets_per_sec regressed: $new_pps < 0.9 x" \
      "recorded $recorded_pps" >&2
    exit 1
  fi
  echo "express gate: $new_pps pkt/s >= 0.9 x recorded $recorded_pps"
fi

# --- Flight-recorder overhead gate --------------------------------------
# An armed recorder must not slow the event loop: the chain bench rerun
# with a recorder attached has to stay within 5% of the plain run
# (negative deltas are timing noise and pass).
rec_overhead=$(sed -n 's/.*"chain_overhead_pct": \(-\{0,1\}[0-9.]*\).*/\1/p' \
  "$repo_root/BENCH_engine.json")
if [ -z "$rec_overhead" ]; then
  echo "ERROR: recorder block missing from BENCH_engine.json" >&2
  exit 1
fi
if ! awk -v o="$rec_overhead" 'BEGIN { exit !(o <= 5.0) }'; then
  echo "ERROR: recorder-armed chain overhead ${rec_overhead}% > 5%" >&2
  exit 1
fi
echo "recorder overhead gate: armed chain ${rec_overhead}% (<= 5%)"

# --- PDES profile presence gate -----------------------------------------
# BENCH_engine.json must carry the pdes_profile block: one row per K in
# {1,2,4,8} with per-shard utilization and barrier wait, i.e. 1+2+4+8 =
# 15 shard entries.
if ! grep -q '"pdes_profile"' "$repo_root/BENCH_engine.json"; then
  echo "ERROR: pdes_profile block missing from BENCH_engine.json" >&2
  exit 1
fi
util_rows=$(grep -c '"utilization_pct"' "$repo_root/BENCH_engine.json")
if [ "$util_rows" -ne 15 ]; then
  echo "ERROR: pdes_profile has $util_rows shard rows, expected 15" >&2
  exit 1
fi
echo "pdes profile gate: 15 per-shard rows across K=1/2/4/8"

# --- PDES windows-reduction gate ----------------------------------------
# The per-shard-pair lookahead matrix must cut barrier rounds on the
# 1024-rank sweep3d pipeline (8-group dragonfly mesh, K=8) by >= 1.5x
# versus the scalar global-minimum ablation. Window counts are pure
# functions of the event timeline and the lookahead — no wall clock
# involved — so this gate is deterministic and never skipped, even on
# single-core hosts.
win_matrix=$(sed -n 's/.*"windows_matrix": \([0-9]*\).*/\1/p' \
  "$repo_root/BENCH_engine.json")
win_scalar=$(sed -n 's/.*"windows_scalar": \([0-9]*\).*/\1/p' \
  "$repo_root/BENCH_engine.json")
if [ -z "$win_matrix" ] || [ -z "$win_scalar" ]; then
  echo "ERROR: pdes_windows block missing from BENCH_engine.json" >&2
  exit 1
fi
if ! awk -v m="$win_matrix" -v s="$win_scalar" \
  'BEGIN { exit !(m > 0 && s >= 1.5 * m) }'
then
  echo "ERROR: lookahead matrix saved too few windows: $win_matrix" \
    "matrix vs $win_scalar scalar (< 1.5x reduction)" >&2
  exit 1
fi
echo "pdes windows gate: $win_matrix matrix vs $win_scalar scalar" \
  "rounds (>= 1.5x reduction)"

# --- Route-table memory gate --------------------------------------------
# BENCH_engine.json's paper_scale_8192 block records both route-table
# modes. The algebraic default must keep at least 100x fewer resident
# route-table bytes than the materialized ablation (it actually keeps 0).
alg_bytes=$(sed -n \
  's/.*"algebraic": {[^}]*"route_table_bytes": \([0-9]*\).*/\1/p' \
  "$repo_root/BENCH_engine.json")
lut_bytes=$(sed -n \
  's/.*"materialized": {[^}]*"route_table_bytes": \([0-9]*\).*/\1/p' \
  "$repo_root/BENCH_engine.json")
peak_rss=$(sed -n 's/^  "peak_rss_bytes": \([0-9]*\).*/\1/p' \
  "$repo_root/BENCH_engine.json")
if [ -z "$alg_bytes" ] || [ -z "$lut_bytes" ]; then
  echo "ERROR: paper_scale_8192 route-table rows missing from" \
    "BENCH_engine.json" >&2
  exit 1
fi
if ! awk -v alg="$alg_bytes" -v lut="$lut_bytes" \
  'BEGIN { exit !(lut >= 100 * (alg + 1)) }'
then
  echo "ERROR: route-table reduction below 100x: algebraic $alg_bytes" \
    "bytes vs materialized $lut_bytes bytes" >&2
  exit 1
fi
echo "route-table gate: algebraic $alg_bytes bytes vs materialized" \
  "$lut_bytes bytes (>= 100x reduction); bench peak rss $peak_rss bytes"

# --- PDES shard speedup gate --------------------------------------------
# On multi-core hosts the sharded engine must actually buy wall clock:
# the recorded K=4 row has to beat serial by >= 1.3x. Single- to
# three-core hosts cannot meaningfully parallelize 4 shards, so the gate
# skips loudly there instead of failing.
host_cores=$(nproc)
speedup_k4=$(sed -n \
  's/.*"shards": 4,.*"speedup_vs_serial": \([0-9.]*\).*/\1/p' \
  "$repo_root/BENCH_engine.json")
if [ "$host_cores" -ge 4 ]; then
  if [ -z "$speedup_k4" ]; then
    echo "ERROR: pdes shards=4 row missing from BENCH_engine.json" >&2
    exit 1
  fi
  if ! awk -v s="$speedup_k4" 'BEGIN { exit !(s >= 1.3) }'; then
    echo "ERROR: pdes shards=4 speedup $speedup_k4 < 1.3x on a" \
      "$host_cores-core host" >&2
    exit 1
  fi
  echo "pdes speedup gate: ${speedup_k4}x at shards=4 (>= 1.3x)"
else
  echo "pdes speedup gate: SKIPPED - host has $host_cores core(s)," \
    "need >= 4 for a meaningful shards=4 wall-clock bar" \
    "(measured ${speedup_k4:-n/a}x, informational only)"
fi

# --- Parallel sweep benchmark -------------------------------------------
jobs=$(nproc)
tmp_dir=$(mktemp -d)
trap 'rm -rf "$tmp_dir"' EXIT

echo "sweep: serial run (--jobs=1)"
"$build_dir/bench/fig8_halo3d" --quick --jobs=1 \
  --json="$tmp_dir/serial.json" \
  --metrics="$tmp_dir/serial_metrics.json" > "$tmp_dir/serial.txt"
serial_wall=$(sed -n 's/.*"wall_seconds": \([0-9.]*\).*/\1/p' \
  "$tmp_dir/serial.json")

echo "sweep: parallel run (--jobs=$jobs)"
"$build_dir/bench/fig8_halo3d" --quick --jobs="$jobs" \
  --json="$repo_root/BENCH_sweep.json" \
  --metrics="$tmp_dir/parallel_metrics.json" \
  --serial-wall-s="$serial_wall" > "$tmp_dir/parallel.txt"

# The tables must be byte-identical regardless of job count; only the
# wall-clock/speedup footer lines and the metrics-path status line (each
# run writes its own file) may differ.
grep -v '^grid wall-clock\|^speedup vs serial\|^metrics written' \
  "$tmp_dir/serial.txt" > "$tmp_dir/serial_table.txt"
grep -v '^grid wall-clock\|^speedup vs serial\|^metrics written' \
  "$tmp_dir/parallel.txt" > "$tmp_dir/parallel_table.txt"
if ! diff -u "$tmp_dir/serial_table.txt" "$tmp_dir/parallel_table.txt"; then
  echo "ERROR: parallel sweep output differs from serial" >&2
  exit 1
fi
echo "sweep: tables identical at jobs=1 and jobs=$jobs"

# --- Metrics smoke gate -------------------------------------------------
# The metrics documents must be byte-identical across job counts, parse
# cleanly, and contain the required instruments, a populated latency
# histogram, and sampled gauge timeseries.
if ! cmp -s "$tmp_dir/serial_metrics.json" "$tmp_dir/parallel_metrics.json"
then
  echo "ERROR: metrics document differs between jobs=1 and jobs=$jobs" >&2
  exit 1
fi
"$build_dir/tools/rvma_metrics" check "$tmp_dir/parallel_metrics.json" \
  fabric.packets_delivered fabric.pkt_latency_ns rvma.completions \
  engine.events_executed nic.messages_sent \
  --need-histogram --need-timeseries
"$build_dir/tools/rvma_metrics" summarize "$tmp_dir/parallel_metrics.json" \
  > /dev/null
echo "metrics: documents identical, schema + instruments validated"

# --- Scenario equivalence gate ------------------------------------------
# The declarative path must be the same experiment: fig8 emits its grid
# as an rvma-scenario-grid-v1 document, rvma_run executes it, and the
# table and metrics document must be byte-identical to the bench's own
# serial run above.
echo "scenario: rvma_run replay of the emitted fig8 grid"
"$build_dir/bench/fig8_halo3d" --quick --emit-grid="$tmp_dir/fig8_grid.json" \
  > /dev/null
"$build_dir/tools/rvma_run" "$tmp_dir/fig8_grid.json" --jobs=1 \
  --metrics="$tmp_dir/scenario_metrics.json" > "$tmp_dir/scenario.txt"
grep -v '^grid wall-clock\|^speedup vs serial\|^metrics written' \
  "$tmp_dir/scenario.txt" > "$tmp_dir/scenario_table.txt"
if ! diff -u "$tmp_dir/serial_table.txt" "$tmp_dir/scenario_table.txt"; then
  echo "ERROR: rvma_run grid output differs from the fig8 bench" >&2
  exit 1
fi
if ! cmp -s "$tmp_dir/serial_metrics.json" "$tmp_dir/scenario_metrics.json"
then
  echo "ERROR: rvma_run metrics differ from the fig8 bench" >&2
  exit 1
fi
echo "scenario: rvma_run table and metrics byte-identical to the bench"

# --- Express exactness gate ---------------------------------------------
# The express cut-through path must be a pure wall-clock optimization:
# the grid with --no-express must print an identical table and produce an
# identical metrics document. Sampling is disabled (--metrics-period-us=0)
# because the sampler may observe express's eager port charges mid-flight
# (DESIGN.md §8); the engine event-count lines are filtered — executing
# fewer events is the one intended difference.
echo "express: ablation run (--no-express)"
"$build_dir/bench/fig8_halo3d" --quick --jobs="$jobs" \
  --metrics-period-us=0 \
  --metrics="$tmp_dir/express_on_metrics.json" > "$tmp_dir/express_on.txt"
"$build_dir/bench/fig8_halo3d" --quick --jobs="$jobs" --no-express \
  --metrics-period-us=0 \
  --metrics="$tmp_dir/express_off_metrics.json" > "$tmp_dir/express_off.txt"
for f in express_on express_off; do
  grep -v '^grid wall-clock\|^speedup vs serial\|^metrics written' \
    "$tmp_dir/$f.txt" > "$tmp_dir/${f}_table.txt"
  grep -v 'engine.events' "$tmp_dir/${f}_metrics.json" \
    > "$tmp_dir/${f}_metrics_filtered.json"
done
if ! diff -u "$tmp_dir/express_on_table.txt" "$tmp_dir/express_off_table.txt"
then
  echo "ERROR: --no-express changed the fig8 table" >&2
  exit 1
fi
if ! cmp -s "$tmp_dir/express_on_metrics_filtered.json" \
  "$tmp_dir/express_off_metrics_filtered.json"
then
  echo "ERROR: --no-express changed the metrics document" >&2
  exit 1
fi
echo "express: table and metrics byte-identical with and without the fast path"

# --- Sharded-engine exactness gate --------------------------------------
# The PDES path (--par-shards=K) must be a pure wall-clock optimization
# too: replaying the same grid with 8 shards per cell must print an
# identical table and produce an identical metrics document
# (DESIGN.md §12). The per-cell engine-event lines and the engine.events
# instrument are filtered — sharded runs execute extra window-boundary
# bookkeeping events; every simulated observable must match.
echo "pdes: sharded replay (--par-shards=8)"
"$build_dir/tools/rvma_run" "$tmp_dir/fig8_grid.json" --jobs=1 \
  --par-shards=8 \
  --metrics="$tmp_dir/pdes_metrics.json" > "$tmp_dir/pdes.txt"
for f in scenario pdes; do
  grep -v '^grid wall-clock\|^speedup vs serial\|^metrics written' \
    "$tmp_dir/$f.txt" | grep -v 'engine events' \
    > "$tmp_dir/${f}_pdes_table.txt"
done
grep -v 'engine.events' "$tmp_dir/scenario_metrics.json" \
  > "$tmp_dir/serial_pdes_metrics.json"
grep -v 'engine.events' "$tmp_dir/pdes_metrics.json" \
  > "$tmp_dir/sharded_pdes_metrics.json"
if ! diff -u "$tmp_dir/scenario_pdes_table.txt" "$tmp_dir/pdes_pdes_table.txt"
then
  echo "ERROR: --par-shards=8 changed the rvma_run table" >&2
  exit 1
fi
if ! cmp -s "$tmp_dir/serial_pdes_metrics.json" \
  "$tmp_dir/sharded_pdes_metrics.json"
then
  echo "ERROR: --par-shards=8 changed the metrics document" >&2
  exit 1
fi
echo "pdes: table and metrics byte-identical at par-shards=1 and 8"

# --- Flight-recorder exactness gate -------------------------------------
# Arming the flight recorder must change no simulation output (the spans
# are keyed purely off simulated time the run already computes,
# DESIGN.md §14): replaying the same grid with --flight-recorder must
# print an identical table and produce an identical metrics document,
# serially and at --par-shards=8.
echo "recorder: armed replay (--flight-recorder, serial)"
"$build_dir/tools/rvma_run" "$tmp_dir/fig8_grid.json" --jobs=1 \
  --flight-recorder="$tmp_dir/frec.rvfr" \
  --metrics="$tmp_dir/frec_metrics.json" > "$tmp_dir/frec.txt"
grep -v '^grid wall-clock\|^speedup vs serial\|^metrics written' \
  "$tmp_dir/frec.txt" > "$tmp_dir/frec_table.txt"
if ! diff -u "$tmp_dir/scenario_table.txt" "$tmp_dir/frec_table.txt"; then
  echo "ERROR: --flight-recorder changed the rvma_run table" >&2
  exit 1
fi
if ! cmp -s "$tmp_dir/scenario_metrics.json" "$tmp_dir/frec_metrics.json"; then
  echo "ERROR: --flight-recorder changed the metrics document" >&2
  exit 1
fi
if ! ls "$tmp_dir"/frec.rvfr.run* > /dev/null 2>&1; then
  echo "ERROR: armed run wrote no flight-recorder dumps" >&2
  exit 1
fi
echo "recorder: armed replay (--flight-recorder --par-shards=8)"
"$build_dir/tools/rvma_run" "$tmp_dir/fig8_grid.json" --jobs=1 \
  --par-shards=8 --flight-recorder="$tmp_dir/frec_pdes.rvfr" \
  --metrics="$tmp_dir/frec_pdes_metrics.json" > "$tmp_dir/frec_pdes.txt"
grep -v '^grid wall-clock\|^speedup vs serial\|^metrics written' \
  "$tmp_dir/frec_pdes.txt" | grep -v 'engine events' \
  > "$tmp_dir/frec_pdes_table.txt"
if ! diff -u "$tmp_dir/pdes_pdes_table.txt" "$tmp_dir/frec_pdes_table.txt"
then
  echo "ERROR: --flight-recorder at --par-shards=8 changed the table" >&2
  exit 1
fi
grep -v 'engine.events' "$tmp_dir/frec_pdes_metrics.json" \
  > "$tmp_dir/frec_pdes_metrics_filtered.json"
if ! cmp -s "$tmp_dir/sharded_pdes_metrics.json" \
  "$tmp_dir/frec_pdes_metrics_filtered.json"
then
  echo "ERROR: --flight-recorder at --par-shards=8 changed the metrics" >&2
  exit 1
fi
echo "recorder: table and metrics byte-identical with the recorder armed"

# --- Route-table ablation gate ------------------------------------------
# Algebraic next-hop arithmetic is the default; replaying the same grid
# with --route-table=materialized (the full O(S*N) LUT) must print an
# identical table and produce an identical metrics document — routing
# decisions, and therefore every simulated byte, cannot depend on how the
# next hop is stored.
echo "route-table: materialized-LUT replay (--route-table=materialized)"
"$build_dir/tools/rvma_run" "$tmp_dir/fig8_grid.json" --jobs=1 \
  --route-table=materialized \
  --metrics="$tmp_dir/lut_metrics.json" > "$tmp_dir/lut.txt"
grep -v '^grid wall-clock\|^speedup vs serial\|^metrics written' \
  "$tmp_dir/lut.txt" > "$tmp_dir/lut_table.txt"
if ! diff -u "$tmp_dir/serial_table.txt" "$tmp_dir/lut_table.txt"; then
  echo "ERROR: --route-table=materialized changed the fig8 table" >&2
  exit 1
fi
if ! cmp -s "$tmp_dir/serial_metrics.json" "$tmp_dir/lut_metrics.json"; then
  echo "ERROR: --route-table=materialized changed the metrics document" >&2
  exit 1
fi
echo "route-table: table and metrics byte-identical algebraic vs materialized"

# --- Paper-scale smoke gate ---------------------------------------------
# One 8,192-rank fig8-style cell (torus3d-static, halo3d, RVMA) must run
# to completion through rvma_run inside a wall-time and memory budget.
# Construction is reported separately from simulation via --timing; the
# budgets (60 s wall, 1 GiB RSS) are ~100x headroom over the measured
# 0.4 s / 120 MiB so the gate catches regressions in kind, not noise.
echo "paper-scale: 8192-rank torus halo3d cell via rvma_run"
printf '{"format": "rvma-scenario-v1", "scenario": {}}\n' \
  > "$tmp_dir/paper_cell.json"
paper_start=$(date +%s)
"$build_dir/tools/rvma_run" "$tmp_dir/paper_cell.json" \
  --topology=torus3d --routing=static --nodes=8192 --transport=rvma \
  --motif=halo3d --motif.nx=4 --motif.ny=4 --motif.nz=4 --motif.vars=4 \
  --motif.iterations=1 --motif.compute_per_cell=50ps --timing \
  > "$tmp_dir/paper_cell.txt" 2> "$tmp_dir/paper_cell_timing.txt"
paper_wall=$(( $(date +%s) - paper_start ))
cat "$tmp_dir/paper_cell_timing.txt"
if ! grep -q '^  packets: [1-9][0-9]* injected' "$tmp_dir/paper_cell.txt"; then
  echo "ERROR: 8192-rank cell delivered no packets" >&2
  exit 1
fi
if [ "$paper_wall" -gt 60 ]; then
  echo "ERROR: 8192-rank cell took ${paper_wall}s (budget 60s)" >&2
  exit 1
fi
paper_rss=$(sed -n 's/.*peak_rss \([0-9]*\) bytes.*/\1/p' \
  "$tmp_dir/paper_cell_timing.txt")
if [ -n "$paper_rss" ] && [ "$paper_rss" -gt 1073741824 ]; then
  echo "ERROR: 8192-rank cell peak rss $paper_rss bytes (budget 1 GiB)" >&2
  exit 1
fi
echo "paper-scale: completed in ${paper_wall}s, peak rss" \
  "${paper_rss:-unknown} bytes (budgets: 60s, 1 GiB)"

# --- Motif registry completeness gate -----------------------------------
# `rvma_run --list` must name every built-in motif, including the
# rvma.h API-layer ones (remote_paging / kv_store / alltoall) — a motif
# that never registers cannot be swept by any grid.
for motif in allreduce alltoall barrier broadcast halo3d incast kv_store \
  remote_paging sweep3d
do
  if ! "$build_dir/tools/rvma_run" --list | grep -q "^  $motif "; then
    echo "ERROR: rvma_run --list does not name motif \"$motif\"" >&2
    exit 1
  fi
done
echo "registry: rvma_run --list names all 9 built-in motifs"

# --- KV-store doorbell-batching gate ------------------------------------
# The RDMAbox-style doorbell batching knob must be a pure NIC-occupancy
# optimization: --doorbell-batch=1 must reproduce the unbatched run
# byte-for-byte (table and metrics), while --doorbell-batch=8 must merge
# a strictly positive number of doorbells — and every send still crosses
# PCIe exactly once (doorbells + merged is conserved).
echo "kv: doorbell-batching ablation (kv_store, 16 nodes, 4 servers)"
printf '{"format": "rvma-scenario-v1", "scenario": {}}\n' \
  > "$tmp_dir/kv_cell.json"
kv_run() {
  "$build_dir/tools/rvma_run" "$tmp_dir/kv_cell.json" \
    --topology=fattree --nodes=16 --transport=rvma --motif=kv_store \
    --motif.servers=4 --motif.requests=64 --motif.outstanding=4 "$@"
}
kv_run --metrics="$tmp_dir/kv_plain.json" > "$tmp_dir/kv_plain.txt"
kv_run --doorbell-batch=1 --metrics="$tmp_dir/kv_b1.json" \
  > "$tmp_dir/kv_b1.txt"
kv_run --doorbell-batch=8 --metrics="$tmp_dir/kv_b8.json" \
  > "$tmp_dir/kv_b8.txt"
sed 's/^metrics written.*//' "$tmp_dir/kv_plain.txt" > "$tmp_dir/kv_plain.flt"
sed 's/^metrics written.*//' "$tmp_dir/kv_b1.txt" > "$tmp_dir/kv_b1.flt"
if ! diff -u "$tmp_dir/kv_plain.flt" "$tmp_dir/kv_b1.flt" \
  || ! cmp -s "$tmp_dir/kv_plain.json" "$tmp_dir/kv_b1.json"
then
  echo "ERROR: --doorbell-batch=1 changed the kv_store run" >&2
  exit 1
fi
kv_doorbells() { sed -n 's/.*"nic.doorbells": *\([0-9]*\).*/\1/p' "$1"; }
kv_merged() {
  sed -n 's/.*"nic.doorbells_merged": *\([0-9]*\).*/\1/p' "$1"
}
db_plain=$(kv_doorbells "$tmp_dir/kv_plain.json")
db_b8=$(kv_doorbells "$tmp_dir/kv_b8.json")
merged_b8=$(kv_merged "$tmp_dir/kv_b8.json")
if [ "$merged_b8" -le 0 ] || [ "$db_b8" -ge "$db_plain" ] \
  || [ $((db_b8 + merged_b8)) -ne "$db_plain" ]
then
  echo "ERROR: doorbell batching broken: plain=$db_plain batch8=$db_b8" \
    "merged=$merged_b8" >&2
  exit 1
fi
kv_makespan_ms=$(sed -n 's/.*makespan: \([0-9.]*\) ms.*/\1/p' \
  "$tmp_dir/kv_plain.txt")
kv_requests=$(sed -n 's/.*"kv.requests": *\([0-9]*\).*/\1/p' \
  "$tmp_dir/kv_plain.json")
kv_rps=$(awk -v r="$kv_requests" -v ms="$kv_makespan_ms" \
  'BEGIN { printf "%d", r / (ms / 1000) }')
echo "kv gate: $db_plain doorbells unbatched vs $db_b8 at batch=8" \
  "($merged_b8 merged); $kv_requests requests in ${kv_makespan_ms} ms" \
  "= $kv_rps req/s simulated"

# Record the kv_store block in BENCH_engine.json (the engine bench wrote
# the file fresh above, so this append never duplicates).
kv_json=$(mktemp)
sed '$d' "$repo_root/BENCH_engine.json" > "$kv_json"
printf ',\n  "kv_store": {"nodes": 16, "servers": 4, "requests": %s, "makespan_ms": %s, "requests_per_sec_sim": %s, "doorbells_unbatched": %s, "doorbells_batch8": %s, "doorbells_merged_batch8": %s}\n}\n' \
  "$kv_requests" "$kv_makespan_ms" "$kv_rps" \
  "$db_plain" "$db_b8" "$merged_b8" >> "$kv_json"
mv "$kv_json" "$repo_root/BENCH_engine.json"
echo "kv: block recorded in BENCH_engine.json"

cat "$tmp_dir/parallel.txt"
echo "wrote $repo_root/BENCH_sweep.json"
