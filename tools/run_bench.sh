#!/usr/bin/env sh
# Build the perf benchmarks in Release mode and run them, writing
# BENCH_engine.json and BENCH_sweep.json at the repo root.
#
# BENCH_sweep.json records the parallel-sweep experiment: fig8_halo3d
# --quick is run serially (--jobs=1) and then with all host cores, the
# printed tables are diffed (they must be byte-identical — the sweep
# executor's determinism contract), and the parallel run's JSON gains a
# speedup_vs_serial field computed from the serial wall-clock.
#
# Both runs also emit --metrics documents; the script asserts they are
# byte-identical (the metrics determinism contract) and gates them
# through `rvma_metrics check` (schema + required instruments +
# histogram + timeseries).
#
# Two more gates protect the express cut-through path (DESIGN.md §8):
# fabric_packets_per_sec must not regress below 0.9x the value recorded
# in the committed BENCH_engine.json, and a fig8 --quick grid run with
# --no-express must produce a byte-identical table and metrics document
# (modulo the engine event counters — fewer events is the whole point).
#
# Usage: tools/run_bench.sh [build-dir]
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-bench"}

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" --target engine_throughput fig8_halo3d \
  rvma_metrics rvma_run -j "$(nproc)"

# Capture the previously recorded express-path throughput before the
# bench overwrites the file.
recorded_pps=""
if [ -f "$repo_root/BENCH_engine.json" ]; then
  # Last match: the "current" block (the first is the seed baseline).
  recorded_pps=$(sed -n \
    's/.*"fabric_packets_per_sec": \([0-9]*\).*/\1/p' \
    "$repo_root/BENCH_engine.json" | tail -n 1)
fi

"$build_dir/bench/engine_throughput" "$repo_root/BENCH_engine.json"

# --- Express fast-path regression gate ----------------------------------
new_pps=$(sed -n 's/.*"fabric_packets_per_sec": \([0-9]*\).*/\1/p' \
  "$repo_root/BENCH_engine.json" | tail -n 1)
if [ -n "$recorded_pps" ] && [ -n "$new_pps" ]; then
  if ! awk -v new="$new_pps" -v old="$recorded_pps" \
    'BEGIN { exit !(new >= 0.9 * old) }'
  then
    echo "ERROR: fabric_packets_per_sec regressed: $new_pps < 0.9 x" \
      "recorded $recorded_pps" >&2
    exit 1
  fi
  echo "express gate: $new_pps pkt/s >= 0.9 x recorded $recorded_pps"
fi

# --- Parallel sweep benchmark -------------------------------------------
jobs=$(nproc)
tmp_dir=$(mktemp -d)
trap 'rm -rf "$tmp_dir"' EXIT

echo "sweep: serial run (--jobs=1)"
"$build_dir/bench/fig8_halo3d" --quick --jobs=1 \
  --json="$tmp_dir/serial.json" \
  --metrics="$tmp_dir/serial_metrics.json" > "$tmp_dir/serial.txt"
serial_wall=$(sed -n 's/.*"wall_seconds": \([0-9.]*\).*/\1/p' \
  "$tmp_dir/serial.json")

echo "sweep: parallel run (--jobs=$jobs)"
"$build_dir/bench/fig8_halo3d" --quick --jobs="$jobs" \
  --json="$repo_root/BENCH_sweep.json" \
  --metrics="$tmp_dir/parallel_metrics.json" \
  --serial-wall-s="$serial_wall" > "$tmp_dir/parallel.txt"

# The tables must be byte-identical regardless of job count; only the
# wall-clock/speedup footer lines and the metrics-path status line (each
# run writes its own file) may differ.
grep -v '^grid wall-clock\|^speedup vs serial\|^metrics written' \
  "$tmp_dir/serial.txt" > "$tmp_dir/serial_table.txt"
grep -v '^grid wall-clock\|^speedup vs serial\|^metrics written' \
  "$tmp_dir/parallel.txt" > "$tmp_dir/parallel_table.txt"
if ! diff -u "$tmp_dir/serial_table.txt" "$tmp_dir/parallel_table.txt"; then
  echo "ERROR: parallel sweep output differs from serial" >&2
  exit 1
fi
echo "sweep: tables identical at jobs=1 and jobs=$jobs"

# --- Metrics smoke gate -------------------------------------------------
# The metrics documents must be byte-identical across job counts, parse
# cleanly, and contain the required instruments, a populated latency
# histogram, and sampled gauge timeseries.
if ! cmp -s "$tmp_dir/serial_metrics.json" "$tmp_dir/parallel_metrics.json"
then
  echo "ERROR: metrics document differs between jobs=1 and jobs=$jobs" >&2
  exit 1
fi
"$build_dir/tools/rvma_metrics" check "$tmp_dir/parallel_metrics.json" \
  fabric.packets_delivered fabric.pkt_latency_ns rvma.completions \
  engine.events_executed nic.messages_sent \
  --need-histogram --need-timeseries
"$build_dir/tools/rvma_metrics" summarize "$tmp_dir/parallel_metrics.json" \
  > /dev/null
echo "metrics: documents identical, schema + instruments validated"

# --- Scenario equivalence gate ------------------------------------------
# The declarative path must be the same experiment: fig8 emits its grid
# as an rvma-scenario-grid-v1 document, rvma_run executes it, and the
# table and metrics document must be byte-identical to the bench's own
# serial run above.
echo "scenario: rvma_run replay of the emitted fig8 grid"
"$build_dir/bench/fig8_halo3d" --quick --emit-grid="$tmp_dir/fig8_grid.json" \
  > /dev/null
"$build_dir/tools/rvma_run" "$tmp_dir/fig8_grid.json" --jobs=1 \
  --metrics="$tmp_dir/scenario_metrics.json" > "$tmp_dir/scenario.txt"
grep -v '^grid wall-clock\|^speedup vs serial\|^metrics written' \
  "$tmp_dir/scenario.txt" > "$tmp_dir/scenario_table.txt"
if ! diff -u "$tmp_dir/serial_table.txt" "$tmp_dir/scenario_table.txt"; then
  echo "ERROR: rvma_run grid output differs from the fig8 bench" >&2
  exit 1
fi
if ! cmp -s "$tmp_dir/serial_metrics.json" "$tmp_dir/scenario_metrics.json"
then
  echo "ERROR: rvma_run metrics differ from the fig8 bench" >&2
  exit 1
fi
echo "scenario: rvma_run table and metrics byte-identical to the bench"

# --- Express exactness gate ---------------------------------------------
# The express cut-through path must be a pure wall-clock optimization:
# the grid with --no-express must print an identical table and produce an
# identical metrics document. Sampling is disabled (--metrics-period-us=0)
# because the sampler may observe express's eager port charges mid-flight
# (DESIGN.md §8); the engine event-count lines are filtered — executing
# fewer events is the one intended difference.
echo "express: ablation run (--no-express)"
"$build_dir/bench/fig8_halo3d" --quick --jobs="$jobs" \
  --metrics-period-us=0 \
  --metrics="$tmp_dir/express_on_metrics.json" > "$tmp_dir/express_on.txt"
"$build_dir/bench/fig8_halo3d" --quick --jobs="$jobs" --no-express \
  --metrics-period-us=0 \
  --metrics="$tmp_dir/express_off_metrics.json" > "$tmp_dir/express_off.txt"
for f in express_on express_off; do
  grep -v '^grid wall-clock\|^speedup vs serial\|^metrics written' \
    "$tmp_dir/$f.txt" > "$tmp_dir/${f}_table.txt"
  grep -v 'engine.events' "$tmp_dir/${f}_metrics.json" \
    > "$tmp_dir/${f}_metrics_filtered.json"
done
if ! diff -u "$tmp_dir/express_on_table.txt" "$tmp_dir/express_off_table.txt"
then
  echo "ERROR: --no-express changed the fig8 table" >&2
  exit 1
fi
if ! cmp -s "$tmp_dir/express_on_metrics_filtered.json" \
  "$tmp_dir/express_off_metrics_filtered.json"
then
  echo "ERROR: --no-express changed the metrics document" >&2
  exit 1
fi
echo "express: table and metrics byte-identical with and without the fast path"

# --- Sharded-engine exactness gate --------------------------------------
# The PDES path (--par-shards=K) must be a pure wall-clock optimization
# too: replaying the same grid with 8 shards per cell must print an
# identical table and produce an identical metrics document
# (DESIGN.md §12). The per-cell engine-event lines and the engine.events
# instrument are filtered — sharded runs execute extra window-boundary
# bookkeeping events; every simulated observable must match.
echo "pdes: sharded replay (--par-shards=8)"
"$build_dir/tools/rvma_run" "$tmp_dir/fig8_grid.json" --jobs=1 \
  --par-shards=8 \
  --metrics="$tmp_dir/pdes_metrics.json" > "$tmp_dir/pdes.txt"
for f in scenario pdes; do
  grep -v '^grid wall-clock\|^speedup vs serial\|^metrics written' \
    "$tmp_dir/$f.txt" | grep -v 'engine events' \
    > "$tmp_dir/${f}_pdes_table.txt"
done
grep -v 'engine.events' "$tmp_dir/scenario_metrics.json" \
  > "$tmp_dir/serial_pdes_metrics.json"
grep -v 'engine.events' "$tmp_dir/pdes_metrics.json" \
  > "$tmp_dir/sharded_pdes_metrics.json"
if ! diff -u "$tmp_dir/scenario_pdes_table.txt" "$tmp_dir/pdes_pdes_table.txt"
then
  echo "ERROR: --par-shards=8 changed the rvma_run table" >&2
  exit 1
fi
if ! cmp -s "$tmp_dir/serial_pdes_metrics.json" \
  "$tmp_dir/sharded_pdes_metrics.json"
then
  echo "ERROR: --par-shards=8 changed the metrics document" >&2
  exit 1
fi
echo "pdes: table and metrics byte-identical at par-shards=1 and 8"

cat "$tmp_dir/parallel.txt"
echo "wrote $repo_root/BENCH_sweep.json"
