#!/usr/bin/env sh
# Build the engine hot-path benchmark in Release mode and run it,
# writing BENCH_engine.json at the repo root.
#
# Usage: tools/run_bench.sh [build-dir]
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-bench"}

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" --target engine_throughput -j "$(nproc)"

"$build_dir/bench/engine_throughput" "$repo_root/BENCH_engine.json"
