// trace_stats: offline analysis of an RVMA_TRACE JSONL file.
//
// Reads the event stream the tracer emits (pkt_inject / pkt_deliver /
// rvma_complete / rvma_drop / rvma_nack) and prints: event counts, the
// packet network latency distribution, per-event latency percentiles,
// per-node delivery counts, and drop reasons — the quick triage view for
// a simulation run. Records carrying an "eng" field (stamped by
// Engine::set_tracer) are grouped per engine, so a serial sweep writing
// every run through one shared trace file is no longer double-counted.
//
// The heavy lifting lives in obs/trace_analysis (shared with the
// `rvma_metrics trace` subcommand); this binary is the classic entry
// point kept for scripts and muscle memory.
//
// Usage: trace_stats <trace.jsonl>
#include <cstdio>
#include <string>

#include "obs/trace_analysis.hpp"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: trace_stats <trace.jsonl>\n");
    return 2;
  }
  rvma::obs::TraceAnalysis analysis;
  std::string error;
  if (!rvma::obs::analyze_trace_file(argv[1], &analysis, &error)) {
    std::fprintf(stderr, "trace_stats: %s\n", error.c_str());
    return 2;
  }
  rvma::obs::print_trace_analysis(analysis, argv[1], stdout);
  return 0;
}
