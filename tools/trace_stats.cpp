// trace_stats: offline analysis of an RVMA_TRACE JSONL file.
//
// Reads the event stream the tracer emits (pkt_inject / pkt_deliver /
// rvma_complete / rvma_drop) and prints: event counts, the packet network
// latency distribution (log2 histogram + percentiles), per-node delivery
// counts, and drop reasons — the quick triage view for a simulation run.
//
// Usage: trace_stats <trace.jsonl>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace {

/// Extract the integer field `key` from a single-line JSON object of the
/// rigid form the tracer writes ({"k":123,...}); returns false if absent.
bool json_int(const std::string& line, const char* key, long long* out) {
  const std::string needle = std::string("\"") + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return false;
  *out = std::strtoll(line.c_str() + pos + needle.size(), nullptr, 10);
  return true;
}

bool json_event(const std::string& line, std::string* out) {
  const auto pos = line.find("\"ev\":\"");
  if (pos == std::string::npos) return false;
  const auto start = pos + 6;
  const auto end = line.find('"', start);
  if (end == std::string::npos) return false;
  *out = line.substr(start, end - start);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: trace_stats <trace.jsonl>\n");
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "trace_stats: cannot open %s\n", argv[1]);
    return 2;
  }

  std::map<std::string, std::uint64_t> event_counts;
  std::map<long long, std::uint64_t> deliveries_per_node;
  std::map<long long, std::uint64_t> drops_per_reason;
  rvma::Samples pkt_latency_us;
  rvma::Log2Histogram lat_hist_ns;
  rvma::RunningStat hops;
  std::uint64_t completions = 0, soft_completions = 0;
  long long t_last = 0;

  for (std::string line; std::getline(in, line);) {
    std::string event;
    if (!json_event(line, &event)) continue;
    ++event_counts[event];
    long long t = 0;
    if (json_int(line, "t", &t)) t_last = std::max(t_last, t);

    if (event == "pkt_deliver") {
      long long lat = 0, dst = 0, hop = 0;
      if (json_int(line, "lat_ps", &lat)) {
        pkt_latency_us.add(rvma::to_us(static_cast<rvma::Time>(lat)));
        lat_hist_ns.add(static_cast<std::uint64_t>(lat) / rvma::kNanosecond);
      }
      if (json_int(line, "dst", &dst)) ++deliveries_per_node[dst];
      if (json_int(line, "hops", &hop)) hops.add(static_cast<double>(hop));
    } else if (event == "rvma_complete") {
      long long soft = 0;
      json_int(line, "soft", &soft);
      soft != 0 ? ++soft_completions : ++completions;
    } else if (event == "rvma_drop") {
      long long reason = 0;
      json_int(line, "reason", &reason);
      ++drops_per_reason[reason];
    }
  }

  std::printf("trace: %s (simulated span %s)\n\n", argv[1],
              rvma::format_time(static_cast<rvma::Time>(t_last)).c_str());

  rvma::Table events({"event", "count"});
  for (const auto& [name, count] : event_counts) {
    events.add_row({name, std::to_string(count)});
  }
  events.print();

  if (pkt_latency_us.count() > 0) {
    std::printf("\npacket network latency (us): n=%zu mean=%.3f p50=%.3f "
                "p99=%.3f max=%.3f; mean hops=%.2f\n",
                pkt_latency_us.count(), pkt_latency_us.mean(),
                pkt_latency_us.percentile(50), pkt_latency_us.percentile(99),
                pkt_latency_us.max(), hops.mean());
    std::printf("latency histogram (ns, log2 buckets):\n");
    for (int b = 0; b <= rvma::Log2Histogram::kBuckets; ++b) {
      const auto count = lat_hist_ns.bucket_count(b);
      if (count == 0) continue;
      std::printf("  >= %8llu ns : %llu\n",
                  static_cast<unsigned long long>(
                      rvma::Log2Histogram::bucket_floor(b)),
                  static_cast<unsigned long long>(count));
    }
  }

  std::printf("\nRVMA completions: %llu hardware, %llu soft (inc_epoch)\n",
              static_cast<unsigned long long>(completions),
              static_cast<unsigned long long>(soft_completions));
  if (!drops_per_reason.empty()) {
    std::printf("drops by reason code:\n");
    for (const auto& [reason, count] : drops_per_reason) {
      std::printf("  reason %lld: %llu\n", reason,
                  static_cast<unsigned long long>(count));
    }
  }
  if (!deliveries_per_node.empty()) {
    long long busiest = -1;
    std::uint64_t most = 0;
    for (const auto& [node, count] : deliveries_per_node) {
      if (count > most) {
        most = count;
        busiest = node;
      }
    }
    std::printf("deliveries to %zu nodes; busiest node %lld (%llu pkts)\n",
                deliveries_per_node.size(), busiest,
                static_cast<unsigned long long>(most));
  }
  return 0;
}
