// rvma_run — execute one scenario document, or a whole figure grid.
//
// Usage:
//   rvma_run --list
//       Print every registered topology, transport, and motif.
//   rvma_run <scenario.json> [overlay flags] [--print]
//       Run one scenario (rvma-scenario-v1). Overlay flags (--nodes=64,
//       --transport=rdma, --motif.vars=8, ...) win over file values;
//       --print dumps the effective spec as canonical JSON and exits.
//   rvma_run <grid.json> [--jobs=N] [--quick] [--json=...] [--metrics=...]
//       Expand a sweep grid (rvma-scenario-grid-v1) through the parallel
//       sweep executor and print the figure table — the same driver the
//       fig7/fig8 benches use, so outputs are byte-identical.
//
// The document kind is dispatched on the "format" field; every run is
// deterministic in its spec (same file + flags => same tables, metrics,
// traces at any --jobs).
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/cli.hpp"
#include "obs/metrics_io.hpp"
#include "scenario/figure_grid.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"

using namespace rvma;
using namespace rvma::scenario;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: rvma_run --list\n"
               "       rvma_run <scenario.json> [--nodes=N --transport=T "
               "--motif.<k>=<v> --par-shards=K ...] [--print]\n"
               "       rvma_run <grid.json> [--jobs=N --par-shards=K --quick "
               "--json=PATH --metrics=PATH]\n");
  return 2;
}

int list_registries() {
  std::printf("topologies:\n");
  for (const auto& [name, entry] : topologies().entries())
    std::printf("  %-12s %s\n", name.c_str(), entry.description.c_str());
  std::printf("transports:\n");
  for (const auto& [name, entry] : transports().entries())
    std::printf("  %-12s %s\n", name.c_str(), entry.description.c_str());
  std::printf("motifs:\n");
  for (const auto& [name, entry] : motifs_registry().entries())
    std::printf("  %-12s %s\n", name.c_str(), entry.description.c_str());
  return 0;
}

int run_single(const std::string& text, int argc, char** argv) {
  ScenarioSpec spec;
  std::string error;
  if (!spec_from_json(text, &spec, &error)) {
    std::fprintf(stderr, "rvma_run: %s\n", error.c_str());
    return 2;
  }
  Cli cli(argc, argv);
  if (!apply_cli_overlay(cli, &spec, &error)) {
    std::fprintf(stderr, "rvma_run: %s\n", error.c_str());
    return 2;
  }
  const bool print_only = cli.get_bool("print", false);
  const bool want_timing = cli.get_bool("timing", false);
  for (const auto& key : cli.unconsumed()) {
    std::fprintf(stderr, "unknown option --%s\n", key.c_str());
    return 2;
  }
  if (print_only) {
    std::fputs(to_json(spec).c_str(), stdout);
    return 0;
  }
  if (!validate_scenario(spec, &error)) {
    std::fprintf(stderr, "rvma_run: %s\n", error.c_str());
    return 2;
  }

  ScenarioResult result;
  RunTiming timing;
  if (!run_scenario(spec, &result, &error, nullptr, 0,
                    want_timing ? &timing : nullptr)) {
    std::fprintf(stderr, "rvma_run: %s\n", error.c_str());
    return 1;
  }
  if (want_timing) {
    // Wall clocks and memory go to stderr: stdout is the deterministic
    // summary that run_bench byte-diffs across jobs/shards/ablations.
    std::fprintf(stderr,
                 "timing: construct %.3f s, simulate %.3f s, "
                 "route_table %zu bytes, peak_rss %zu bytes\n",
                 timing.construct_wall_s, timing.sim_wall_s,
                 timing.route_table_bytes, timing.peak_rss_bytes);
  }

  // Deterministic summary: simulated quantities only, no wall clock, so
  // two runs of the same spec byte-diff clean.
  std::printf("scenario: %s\n",
              spec.name.empty() ? "(unnamed)" : spec.name.c_str());
  std::printf("  %s on %s-%s, %d nodes @ %s, transport %s\n",
              spec.motif.c_str(), spec.topology.c_str(), spec.routing.c_str(),
              spec.nodes, format_bandwidth(spec.link_bandwidth).c_str(),
              spec.transport.c_str());
  std::printf("  makespan: %.6f ms\n", to_ms(result.makespan));
  std::printf("  packets: %llu injected, %llu delivered\n",
              static_cast<unsigned long long>(result.packets_injected),
              static_cast<unsigned long long>(result.packets_delivered));
  std::printf("  engine events: %llu\n",
              static_cast<unsigned long long>(result.engine_events));

  if (!spec.metrics_path.empty()) {
    const obs::MetricsDoc doc = build_scenario_metrics_doc(spec, result);
    if (!obs::write_metrics_file(doc, spec.metrics_path)) {
      std::fprintf(stderr, "cannot write %s\n", spec.metrics_path.c_str());
      return 1;
    }
    std::printf("metrics written to %s\n", spec.metrics_path.c_str());
  }
  return 0;
}

int run_grid_doc(const std::string& text, int argc, char** argv) {
  GridSpec grid;
  std::string error;
  if (!grid_from_json(text, &grid, &error)) {
    std::fprintf(stderr, "rvma_run: %s\n", error.c_str());
    return 2;
  }
  // Same flag set as the figure benches — a grid document run here and a
  // bench binary run with the matching flags print identical bytes.
  return run_figure_cli(std::move(grid), argc, argv);
}

}  // namespace

int main(int argc, char** argv) {
  Cli probe(argc, argv);
  if (probe.get_bool("list", false)) return list_registries();
  if (probe.positional().size() != 1) return usage();
  const std::string path = probe.positional()[0];

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "rvma_run: cannot read %s\n", path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  return looks_like_grid(text) ? run_grid_doc(text, argc, argv)
                               : run_single(text, argc, argv);
}
